//! Snapshot/resume determinism guard: running N + M days straight and
//! running N days → save → load → M days must be **byte-identical** —
//! the same `battery_digest` every day and the same published service
//! files. This is the contract that makes the snapshot subsystem safe
//! to deploy: a restart can never fork the published hitlist history.
//!
//! The same guard covers the incremental journal: run(N) → full base →
//! M × delta → replay must equal run(N + M), and a journal torn inside
//! the last delta record must recover to the previous record.
//!
//! Retention expiry is enabled so the guard also covers the
//! accumulate→expire→publish lifecycle (expiry counts must match too).

use expanse_addr::CodecError;
use expanse_core::pipeline::PIPELINE_MAGIC;
use expanse_core::{service, Pipeline, PipelineConfig, RetentionConfig};
use expanse_model::ModelConfig;

const SEED: u64 = 4242;
const WARMUP: u16 = 2;
const N: usize = 3; // days before the save
const M: usize = 3; // days after the resume

fn config() -> PipelineConfig {
    let mut cfg = PipelineConfig {
        trace_budget: 25,
        retention: RetentionConfig {
            window: Some(4),
            every: 1,
        },
        ..PipelineConfig::default()
    };
    cfg.plan.min_targets = 30;
    cfg
}

fn fresh() -> Pipeline {
    let mut p = Pipeline::new(ModelConfig::tiny(SEED), config());
    p.collect_sources(30);
    p.warmup_apd(WARMUP);
    p
}

/// Everything a day publishes, byte for byte.
#[derive(Debug, PartialEq)]
struct DayOutput {
    day: u16,
    battery_digest: u64,
    hitlist_file: String,
    aliased_prefixes_file: String,
    expired_today: usize,
}

fn drive(p: &mut Pipeline, days: usize) -> Vec<DayOutput> {
    (0..days)
        .map(|_| {
            let snap = p.run_day();
            DayOutput {
                day: snap.day,
                battery_digest: snap.battery_digest,
                hitlist_file: service::hitlist_file(&snap),
                aliased_prefixes_file: service::aliased_prefixes_file(&snap),
                expired_today: snap.expired_today,
            }
        })
        .collect()
}

/// The pipeline's full state as one byte string (a sealed base
/// envelope): two pipelines are in the same state iff these agree.
fn state_bytes(p: &mut Pipeline) -> Vec<u8> {
    let mut buf = Vec::new();
    p.save_full(&mut buf).expect("save_full");
    buf
}

#[test]
fn resume_equals_uninterrupted_run() {
    // Reference: one uninterrupted N + M day run.
    let mut straight = fresh();
    let reference = drive(&mut straight, N + M);

    // Candidate: N days, snapshot to bytes, resume, M more days.
    let mut before = fresh();
    let head = drive(&mut before, N);
    assert_eq!(
        head[..],
        reference[..N],
        "same seed + config must agree before the save"
    );
    let mut snapshot = Vec::new();
    before.save_full(&mut snapshot).expect("save_full");
    drop(before);

    let (mut resumed, replay) =
        Pipeline::resume(ModelConfig::tiny(SEED), config(), &mut snapshot.as_slice())
            .expect("resume");
    assert_eq!(replay.deltas_applied, 0);
    assert!(!replay.torn_tail);
    assert_eq!(resumed.day(), (WARMUP as usize + N) as u16);
    let tail = drive(&mut resumed, M);

    assert_eq!(
        tail[..],
        reference[N..],
        "post-resume days must be byte-identical to the uninterrupted run"
    );
    // The resumed pipeline's accumulated state converges too, not just
    // its published outputs.
    assert_eq!(resumed.hitlist.len(), straight.hitlist.len());
    assert_eq!(resumed.ledger.days(), straight.ledger.days());
    assert_eq!(resumed.day(), straight.day());
    assert_eq!(
        resumed.apd.aliased_prefixes(),
        straight.apd.aliased_prefixes()
    );
}

#[test]
fn journal_replay_equals_uninterrupted_run() {
    const K: usize = 2; // days driven after the journal replay

    // Reference: one uninterrupted N + M + K day run.
    let mut straight = fresh();
    let reference = drive(&mut straight, N + M + K);

    // Candidate: N days → full base, then M days each sealed with one
    // delta record.
    let mut writer = fresh();
    drive(&mut writer, N);
    let mut journal = Vec::new();
    writer.save_full(&mut journal).expect("save_full");
    let base_len = journal.len();
    let mut boundaries = Vec::new(); // journal length after each record
    let middle = (0..M)
        .map(|_| {
            let out = drive(&mut writer, 1).pop().expect("one day");
            writer.append_delta(&mut journal).expect("append_delta");
            boundaries.push(journal.len());
            out
        })
        .collect::<Vec<_>>();
    assert_eq!(
        middle[..],
        reference[N..N + M],
        "journal-writing days must match the uninterrupted run"
    );
    // Incrementality: each record is a fraction of the base even at
    // tiny scale, where one day's working set (responders + re-probed
    // APD windows) is a far larger share of the world than in a real
    // deployment. The bench reports the actual ratio.
    for (i, delta_len) in boundaries
        .iter()
        .scan(base_len, |prev, &b| {
            let d = b - *prev;
            *prev = b;
            Some(d)
        })
        .enumerate()
    {
        assert!(
            delta_len < base_len / 3,
            "delta {i} is {delta_len} bytes — not incremental against a {base_len}-byte base"
        );
    }
    assert!(
        journal.len() < 2 * base_len,
        "journal ({} bytes) outgrew twice its base ({base_len} bytes) in {M} days",
        journal.len()
    );

    // Replay the whole journal: every record applies, nothing is torn,
    // and the restored state is byte-identical to the writer's.
    let (mut resumed, replay) =
        Pipeline::resume(ModelConfig::tiny(SEED), config(), &mut journal.as_slice())
            .expect("journal resume");
    assert_eq!(replay.deltas_applied, M);
    assert!(!replay.torn_tail);
    assert_eq!(
        state_bytes(&mut resumed),
        state_bytes(&mut writer),
        "replayed state must be byte-identical to the writer's"
    );

    // And the future it computes is the uninterrupted run's.
    let after = drive(&mut resumed, K);
    assert_eq!(after[..], reference[N + M..]);
}

#[test]
fn torn_tail_recovers_to_previous_record() {
    let mut straight = fresh();
    let reference = drive(&mut straight, N + 2);

    let mut writer = fresh();
    drive(&mut writer, N);
    let mut journal = Vec::new();
    writer.save_full(&mut journal).expect("save_full");
    drive(&mut writer, 1);
    writer.append_delta(&mut journal).expect("append_delta");
    let complete_len = journal.len();
    drive(&mut writer, 1);
    writer.append_delta(&mut journal).expect("append_delta");

    // Tear the journal at every depth inside the last record — from
    // "only the length prefix arrived" to "one byte short": replay must
    // recover to the first record every time, and the recovered
    // pipeline recomputes the lost day byte-identically.
    for keep in [complete_len + 8, (complete_len + journal.len()) / 2] {
        let (p, replay) =
            Pipeline::resume(ModelConfig::tiny(SEED), config(), &mut &journal[..keep])
                .expect("torn journal must still resume");
        assert_eq!(replay.deltas_applied, 1, "torn at {keep}");
        assert!(replay.torn_tail, "torn at {keep}");
        let mut p = p;
        let redone = drive(&mut p, 1);
        assert_eq!(redone[..], reference[N + 1..N + 2], "torn at {keep}");
    }
    // Torn exactly at a record boundary: indistinguishable from a clean
    // shutdown — one record, no torn tail.
    let (_, replay) = Pipeline::resume(
        ModelConfig::tiny(SEED),
        config(),
        &mut &journal[..complete_len],
    )
    .expect("boundary cut resumes");
    assert_eq!(replay.deltas_applied, 1);
    assert!(!replay.torn_tail);
    // A flipped bit inside the last frame is the same as truncation:
    // the record's checksum fails, recovery stops one record earlier.
    let mut evil = journal.clone();
    let at = complete_len + 12;
    evil[at] ^= 0x40;
    let (_, replay) = Pipeline::resume(ModelConfig::tiny(SEED), config(), &mut evil.as_slice())
        .expect("corrupt tail record must not kill the journal");
    assert_eq!(replay.deltas_applied, 1);
    assert!(replay.torn_tail);
}

#[test]
fn save_full_is_deterministic() {
    // Two saves of the same state are byte-identical (no hash-map
    // iteration order may leak into the snapshot), and an append_delta
    // in between must not change what a full save writes.
    let mut p = fresh();
    drive(&mut p, 2);
    let a = state_bytes(&mut p);
    let mut sink = Vec::new();
    p.append_delta(&mut sink).unwrap(); // empty delta: no day ran
    let b = state_bytes(&mut p);
    assert_eq!(a, b);
}

#[test]
fn corrupted_snapshot_errors_cleanly() {
    let mut p = fresh();
    drive(&mut p, 1);
    let mut snapshot = Vec::new();
    p.save_full(&mut snapshot).unwrap();

    // Sanity: the pristine snapshot resumes.
    assert!(Pipeline::resume(ModelConfig::tiny(SEED), config(), &mut snapshot.as_slice()).is_ok());
    // Truncated at any of a few depths inside the *base*: error, never
    // panic (the base has no earlier record to fall back to).
    for keep in [0, 4, snapshot.len() / 2, snapshot.len() - 1] {
        assert!(
            Pipeline::resume(ModelConfig::tiny(SEED), config(), &mut &snapshot[..keep]).is_err(),
            "truncation at {keep} accepted"
        );
    }
    // Wrong magic.
    let mut evil = snapshot.clone();
    evil[0] ^= 0xff;
    assert!(matches!(
        Pipeline::resume(ModelConfig::tiny(SEED), config(), &mut evil.as_slice()),
        Err(CodecError::BadMagic { expected, .. }) if expected == PIPELINE_MAGIC
    ));
    // A flipped payload bit deep in the stream: caught (checksum at the
    // latest), never silently accepted.
    let mut evil = snapshot.clone();
    let at = snapshot.len() * 2 / 3;
    evil[at] ^= 0x01;
    assert!(
        Pipeline::resume(ModelConfig::tiny(SEED), config(), &mut evil.as_slice()).is_err(),
        "bit flip at {at} accepted"
    );
}
