//! The multi-level aliased-prefix detector (§5.1–5.2).
//!
//! Per prefix and day: 16 fan-out targets (one pseudo-random address per
//! 4-bit subprefix), each probed on ICMPv6 **and** TCP/80; a branch
//! counts as responsive if either protocol answered (cross-protocol
//! merging, §5.2). A prefix is aliased when all 16 branches responded
//! within the sliding window.

use crate::window::WindowState;
use expanse_addr::{fanout16, Prefix};
use expanse_netsim::Network;
use expanse_zmap6::module::{IcmpEchoModule, TcpSynModule};
use expanse_zmap6::{ProbeReply, Scanner};
use std::collections::{BTreeSet, HashMap};
use std::net::Ipv6Addr;

/// Detector configuration.
#[derive(Debug, Clone)]
pub struct ApdConfig {
    /// Salt for fan-out target generation (fixed ⇒ same targets daily).
    pub salt: u64,
    /// Sliding window length in days (paper: 3).
    pub window: usize,
}

impl Default for ApdConfig {
    fn default() -> Self {
        ApdConfig {
            salt: 0xa11a5,
            window: 3,
        }
    }
}

/// One day's observation for one prefix.
#[derive(Debug, Clone, Default)]
pub struct DayObservation {
    /// Branch bitmap: bit b = branch b answered ICMPv6.
    pub icmp: u16,
    /// Branch bitmap for TCP/80 SYN-ACKs.
    pub tcp: u16,
    /// TCP replies per branch (for fingerprinting).
    pub tcp_replies: Vec<Option<ProbeReply>>,
    /// ICMP replies per branch (TTL evidence).
    pub icmp_replies: Vec<Option<ProbeReply>>,
}

impl DayObservation {
    /// Cross-protocol merged bitmap (§5.2).
    pub fn merged(&self) -> u16 {
        self.icmp | self.tcp
    }

    /// Did all 16 branches answer (single-day view)?
    pub fn full(&self) -> bool {
        self.merged() == 0xffff
    }
}

/// One day's report across all probed prefixes.
#[derive(Debug, Clone, Default)]
pub struct DayReport {
    /// Per-prefix branch observations for the day.
    pub observations: HashMap<Prefix, DayObservation>,
    /// Probes sent.
    pub probes_sent: u64,
    /// Unique target addresses probed (each gets 2 probes).
    pub targets: u64,
}

/// The stateful detector.
#[derive(Debug, Default)]
pub struct Apd {
    /// Detector configuration.
    pub cfg: ApdConfig,
    /// Sliding-window state per prefix.
    pub windows: HashMap<Prefix, WindowState>,
    /// Prefixes whose window state changed since the last journal sync
    /// point (see [`Apd::mark_synced`] in [`crate::persist`]); kept
    /// sorted so delta frames are written in deterministic order.
    pub(crate) dirty: BTreeSet<Prefix>,
}

impl Apd {
    /// Create a new instance.
    pub fn new(cfg: ApdConfig) -> Self {
        Apd {
            cfg,
            windows: HashMap::new(),
            dirty: BTreeSet::new(),
        }
    }

    /// Probe all `prefixes` once (one "day"), update window state, and
    /// return the raw observations. Probing batches the fan-out targets
    /// of every prefix into two scans (one per protocol), zmap-style.
    pub fn run_day<N: Network>(
        &mut self,
        scanner: &mut Scanner<N>,
        prefixes: &[Prefix],
    ) -> DayReport {
        // Build the combined target list with back-references.
        let mut targets: Vec<Ipv6Addr> = Vec::with_capacity(prefixes.len() * 16);
        let mut back: HashMap<Ipv6Addr, (usize, u8)> = HashMap::new();
        for (pi, p) in prefixes.iter().enumerate() {
            for t in fanout16(*p, self.cfg.salt) {
                // Collisions across overlapping prefixes are possible
                // (e.g. /64 and /68 plans); first plan wins, the branch
                // simply gets probed once.
                back.entry(t.addr).or_insert((pi, t.branch));
                targets.push(t.addr);
            }
        }
        targets.sort();
        targets.dedup();

        let icmp_scan = scanner.scan(&targets, &IcmpEchoModule);
        let tcp_scan = scanner.scan(&targets, &TcpSynModule::with_synopt(80));

        let mut report = DayReport {
            probes_sent: icmp_scan.sent + tcp_scan.sent,
            targets: targets.len() as u64,
            ..DayReport::default()
        };
        for p in prefixes {
            report.observations.insert(
                *p,
                DayObservation {
                    icmp: 0,
                    tcp: 0,
                    tcp_replies: vec![None; 16],
                    icmp_replies: vec![None; 16],
                },
            );
        }
        for (addr, reply) in &icmp_scan.replies {
            if !reply.kind.is_positive() {
                continue;
            }
            // §5.1's /116 carve case: a reply from a *different* address
            // does not count for the probed branch.
            if reply.from != *addr {
                continue;
            }
            if let Some((pi, branch)) = back.get(addr) {
                let obs = report
                    .observations
                    .get_mut(&prefixes[*pi])
                    .expect("prefix observed");
                obs.icmp |= 1 << branch;
                obs.icmp_replies[usize::from(*branch)] = Some(reply.clone());
            }
        }
        for (addr, reply) in &tcp_scan.replies {
            if !reply.kind.is_positive() || reply.from != *addr {
                continue;
            }
            if let Some((pi, branch)) = back.get(addr) {
                let obs = report
                    .observations
                    .get_mut(&prefixes[*pi])
                    .expect("prefix observed");
                obs.tcp |= 1 << branch;
                obs.tcp_replies[usize::from(*branch)] = Some(reply.clone());
            }
        }

        // Update sliding windows.
        for (p, obs) in &report.observations {
            self.windows
                .entry(*p)
                .or_insert_with(|| WindowState::new(self.cfg.window))
                .push_day(obs.merged());
            self.dirty.insert(*p);
        }
        report
    }

    /// Current windowed classification: prefixes whose branches have all
    /// responded within the window.
    pub fn aliased_prefixes(&self) -> Vec<Prefix> {
        let mut v: Vec<Prefix> = self
            .windows
            .iter()
            .filter(|(_, w)| w.aliased())
            .map(|(p, _)| *p)
            .collect();
        v.sort();
        v
    }

    /// Prefixes whose classification has flipped at least once.
    pub fn unstable_prefixes(&self) -> Vec<Prefix> {
        let mut v: Vec<Prefix> = self
            .windows
            .iter()
            .filter(|(_, w)| w.flips() > 0)
            .map(|(p, _)| *p)
            .collect();
        v.sort();
        v
    }

    /// Build the longest-prefix-match filter from the current aliased
    /// set.
    pub fn filter(&self) -> crate::filter::AliasFilter {
        crate::filter::AliasFilter::new(self.aliased_prefixes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expanse_model::{InternetModel, ModelConfig};
    use expanse_zmap6::ScanConfig;

    fn scanner() -> Scanner<InternetModel> {
        Scanner::new(
            InternetModel::build(ModelConfig::tiny(55)),
            ScanConfig::default(),
        )
    }

    #[test]
    fn detects_cdn_hook_as_aliased() {
        let mut s = scanner();
        let hooks: Vec<Prefix> = s.network_mut().population.special.cdn_hook_48s[..4].to_vec();
        let mut apd = Apd::new(ApdConfig::default());
        for day in 0..2 {
            s.network_mut().set_day(day);
            apd.run_day(&mut s, &hooks);
        }
        let aliased = apd.aliased_prefixes();
        assert_eq!(aliased, hooks, "all hook /48s should classify aliased");
    }

    #[test]
    fn non_aliased_64_not_detected() {
        let mut s = scanner();
        // A live-host /64 from a site pool that is genuinely outside any
        // aliased region: fan-out targets are random addresses there,
        // which do not respond.
        let site64 = {
            let net = s.network_mut();
            net.population
                .sites
                .iter()
                .flat_map(|sp| sp.addrs.iter())
                .map(|a| Prefix::new(*a, 64))
                .find(|p64| {
                    (0..4u64).all(|k| {
                        net.population
                            .aliases
                            .resolve(expanse_addr::keyed_random_addr(*p64, k))
                            .is_none()
                    })
                })
                .expect("a non-aliased site /64 exists")
        };
        let mut apd = Apd::new(ApdConfig::default());
        apd.run_day(&mut s, &[site64]);
        assert!(apd.aliased_prefixes().is_empty());
    }

    #[test]
    fn partial96_not_aliased_but_children_are() {
        let mut s = scanner();
        let p96 = s.network_mut().population.special.partial96;
        let children: Vec<Prefix> = (0..16u128).map(|b| p96.subprefix(4, b)).collect();
        let mut plan = vec![p96];
        plan.extend(&children);
        let mut apd = Apd::new(ApdConfig::default());
        for day in 0..2 {
            s.network_mut().set_day(day);
            apd.run_day(&mut s, &plan);
        }
        let aliased = apd.aliased_prefixes();
        assert!(
            !aliased.contains(&p96),
            "fan-out must notice the 7 silent /100s"
        );
        // The 9 aliased children detected (modulo loss, at least 7).
        let hit = children.iter().filter(|c| aliased.contains(c)).count();
        assert!((7..=9).contains(&hit), "detected {hit} of 9 aliased /100s");
    }

    #[test]
    fn carve116_shows_15_of_16() {
        let mut s = scanner();
        let p116 = s.network_mut().population.special.carve116;
        let mut apd = Apd::new(ApdConfig::default());
        let report = apd.run_day(&mut s, &[p116]);
        let obs = &report.observations[&p116];
        let merged = obs.merged();
        assert_eq!(merged & 1, 0, "branch 0x0 must be silent (carved)");
        let answered = merged.count_ones();
        assert!((13..=15).contains(&answered), "answered={answered}");
        assert!(!apd.aliased_prefixes().contains(&p116));
    }

    #[test]
    fn probe_accounting() {
        let mut s = scanner();
        let hooks = vec![s.network_mut().population.special.cdn_hook_48s[0]];
        let mut apd = Apd::new(ApdConfig::default());
        let report = apd.run_day(&mut s, &hooks);
        assert_eq!(report.targets, 16);
        assert_eq!(report.probes_sent, 32); // 16 ICMP + 16 TCP
    }

    #[test]
    fn cross_protocol_merge_rescues_icmp_loss() {
        // Construct observations directly: ICMP lost branch 3, TCP got it.
        let mut obs = DayObservation {
            icmp: !(1 << 3),
            tcp: 1 << 3,
            tcp_replies: vec![None; 16],
            icmp_replies: vec![None; 16],
        };
        assert!(obs.full());
        obs.tcp = 0;
        assert!(!obs.full());
    }
}
