//! Multi-day sliding window over branch responses (§5.2, Table 4).
//!
//! "We introduce a sliding window over several past days, and require
//! each IP address to have responded to any protocol in the past days."
//! The window trades reaction speed for stability: Table 4 shows 3 days
//! cutting unstable prefixes by ~80 %.

use std::collections::VecDeque;

/// Per-prefix window state.
///
/// Fields are crate-visible for the snapshot codec ([`crate::persist`]):
/// the whole struct is persistent detector state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowState {
    /// Days kept *in addition to* today (window = 0 ⇒ today only).
    pub(crate) window: usize,
    /// Most recent day last.
    pub(crate) days: VecDeque<u16>,
    /// Classification of the previous day (after windowing).
    pub(crate) last: Option<bool>,
    pub(crate) flips: u32,
}

impl WindowState {
    /// Create a new instance.
    pub fn new(window: usize) -> Self {
        WindowState {
            window,
            days: VecDeque::new(),
            last: None,
            flips: 0,
        }
    }

    /// Record one day's merged branch bitmap.
    pub fn push_day(&mut self, merged: u16) {
        self.days.push_back(merged);
        while self.days.len() > self.window + 1 {
            self.days.pop_front();
        }
        let class = self.aliased();
        if let Some(prev) = self.last {
            if prev != class {
                self.flips += 1;
            }
        }
        self.last = Some(class);
    }

    /// Branch bitmap merged over the window.
    pub fn windowed(&self) -> u16 {
        self.days.iter().fold(0, |acc, d| acc | d)
    }

    /// Aliased under the windowed view: every branch responded.
    pub fn aliased(&self) -> bool {
        !self.days.is_empty() && self.windowed() == 0xffff
    }

    /// Number of classification flips observed.
    pub fn flips(&self) -> u32 {
        self.flips
    }

    /// Days currently held.
    pub fn days_held(&self) -> usize {
        self.days.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_zero_is_today_only() {
        let mut w = WindowState::new(0);
        w.push_day(0xffff);
        assert!(w.aliased());
        w.push_day(0xfffe);
        assert!(!w.aliased());
        assert_eq!(w.flips(), 1);
    }

    #[test]
    fn window_merges_days() {
        let mut w = WindowState::new(2);
        w.push_day(0x00ff);
        assert!(!w.aliased());
        w.push_day(0xff00);
        assert!(w.aliased(), "two half-days merge to full");
        // A third empty day doesn't break it (window still covers both).
        w.push_day(0x0000);
        assert!(w.aliased());
        // Fourth day: the 0x00ff day falls out.
        w.push_day(0x0000);
        assert!(!w.aliased());
    }

    #[test]
    fn flip_counting() {
        let mut w = WindowState::new(0);
        for d in [0xffffu16, 0x0001, 0xffff, 0x0001] {
            w.push_day(d);
        }
        assert_eq!(w.flips(), 3);
        // Stable prefix: no flips.
        let mut s = WindowState::new(3);
        for _ in 0..10 {
            s.push_day(0xffff);
        }
        assert_eq!(s.flips(), 0);
    }

    #[test]
    fn longer_window_stabilizes_flaky_prefix() {
        // An aliased prefix behind a lossy path: most days all 16
        // branches answer, but every third day one branch drops (the
        // Table 4 scenario).
        let days: Vec<u16> = (0..12)
            .map(|d| if d % 3 == 2 { !(1 << (d % 16)) } else { 0xffff })
            .collect();
        let flips_with = |window: usize| {
            let mut w = WindowState::new(window);
            for &d in &days {
                w.push_day(d);
            }
            w.flips()
        };
        assert!(flips_with(0) >= 6, "day-only view flaps: {}", flips_with(0));
        assert_eq!(flips_with(3), 0, "3-day window should be stable");
    }

    #[test]
    fn empty_is_not_aliased() {
        assert!(!WindowState::new(3).aliased());
    }
}
