//! The Murdock et al. (6Gen) baseline APD (§5.5).
//!
//! "Murdock et al. send three probes each to three random addresses in
//! every /96 prefix. Upon receipt of replies from all three random
//! addresses, the prefix is determined as aliased." Static level, purely
//! random targets, single protocol — the paper's comparison shows the
//! fan-out multi-level method finds more aliased space with fewer than
//! half the probes.

use expanse_addr::{keyed_random_addr, Prefix};
use expanse_netsim::Network;
use expanse_zmap6::module::IcmpEchoModule;
use expanse_zmap6::Scanner;
use std::collections::{HashMap, HashSet};
use std::net::Ipv6Addr;

/// Result of a Murdock-style detection pass.
#[derive(Debug, Clone)]
pub struct MurdockResult {
    /// /96 prefixes classified aliased.
    pub aliased: Vec<Prefix>,
    /// Probes sent (3 probes × 3 addresses per /96).
    pub probes_sent: u64,
    /// Distinct addresses probed.
    pub addresses_probed: u64,
}

/// Run the baseline over a hitlist: every /96 containing at least one
/// hitlist address is tested with 3 random addresses × 3 probes.
pub fn detect<N: Network>(
    scanner: &mut Scanner<N>,
    hitlist: &[Ipv6Addr],
    salt: u64,
) -> MurdockResult {
    // Collect the /96s.
    let mut p96s: HashSet<Prefix> = HashSet::new();
    for &a in hitlist {
        p96s.insert(Prefix::new(a, 96));
    }
    let mut p96s: Vec<Prefix> = p96s.into_iter().collect();
    p96s.sort();

    // Three purely random addresses per /96 (no fan-out discipline).
    let mut targets: Vec<Ipv6Addr> = Vec::with_capacity(p96s.len() * 3);
    let mut back: HashMap<Ipv6Addr, usize> = HashMap::new();
    for (i, p) in p96s.iter().enumerate() {
        for k in 0..3u64 {
            let t = keyed_random_addr(*p, salt ^ (k.wrapping_mul(0x9e37_79b9)));
            back.insert(t, i);
            targets.push(t);
        }
    }
    targets.sort();
    targets.dedup();

    // 3 probes per address (same-day retries; in both the paper's
    // methodology and this simulation, retries mostly share fate).
    let mut answered: HashMap<usize, HashSet<Ipv6Addr>> = HashMap::new();
    let mut probes_sent = 0u64;
    for _attempt in 0..3 {
        let scan = scanner.scan(&targets, &IcmpEchoModule);
        probes_sent += scan.sent;
        for (addr, reply) in &scan.replies {
            if reply.kind.is_positive() && reply.from == *addr {
                if let Some(&i) = back.get(addr) {
                    answered.entry(i).or_default().insert(*addr);
                }
            }
        }
    }

    let aliased: Vec<Prefix> = p96s
        .iter()
        .enumerate()
        .filter(|(i, _)| answered.get(i).is_some_and(|s| s.len() == 3))
        .map(|(_, p)| *p)
        .collect();

    MurdockResult {
        aliased,
        probes_sent,
        addresses_probed: targets.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expanse_model::{InternetModel, ModelConfig};
    use expanse_zmap6::ScanConfig;

    #[test]
    fn finds_aliased_96s_inside_hook() {
        let model = InternetModel::build(ModelConfig::tiny(66));
        let hook = model.population.special.cdn_hook_48s[0];
        let mut scanner = Scanner::new(model, ScanConfig::default());
        // Hitlist: a few addresses inside one aliased /48.
        let hitlist: Vec<Ipv6Addr> = (0..5u64).map(|i| keyed_random_addr(hook, i)).collect();
        let r = detect(&mut scanner, &hitlist, 7);
        assert!(!r.aliased.is_empty(), "should classify hook /96s aliased");
        assert!(r.aliased.iter().all(|p| p.len() == 96));
        assert!(r.probes_sent >= r.addresses_probed);
    }

    #[test]
    fn non_aliased_not_flagged() {
        let model = InternetModel::build(ModelConfig::tiny(66));
        // A site address outside every aliased region (which site index
        // that is depends on the model's random stream).
        let host_addr = model
            .population
            .sites
            .iter()
            .flat_map(|s| s.addrs.iter())
            .copied()
            .find(|a| model.population.aliases.resolve(*a).is_none())
            .expect("a non-aliased site address exists");
        let mut scanner = Scanner::new(model, ScanConfig::default());
        let r = detect(&mut scanner, &[host_addr], 7);
        assert!(r.aliased.is_empty());
        // 1 /96 × 3 addresses × 3 attempts.
        assert_eq!(r.addresses_probed, 3);
        assert_eq!(r.probes_sent, 9);
    }

    #[test]
    fn static_96_misses_deeper_alias() {
        // An aliased /112 inside a /96: random /96 probes land outside
        // the /112 with overwhelming probability -> missed. Our fan-out
        // method at /112 level would catch it (tested in detector.rs).
        let model = InternetModel::build(ModelConfig::tiny(66));
        // Find a scattered aliased region deeper than /96 if present.
        let deep: Vec<Prefix> = model
            .population
            .aliases
            .iter()
            .map(|(p, _)| p)
            .filter(|p| p.len() > 96)
            .collect();
        let mut scanner = Scanner::new(model, ScanConfig::default());
        for p in deep.iter().take(2) {
            let inside = keyed_random_addr(*p, 1);
            let r = detect(&mut scanner, &[inside], 3);
            // The /96 containing the /112+ region: probes are random in
            // the /96, P(landing in the region) ≤ 2^-16 per probe.
            assert!(
                r.aliased.is_empty(),
                "static /96 should miss deep region {p}"
            );
        }
    }
}
