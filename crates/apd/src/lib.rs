//! `expanse-apd`: multi-level aliased prefix detection — the paper's §5.
//!
//! Aliased prefixes (one machine answering an entire prefix, e.g. via
//! `IP_FREEBIND`) can flood a hitlist with millions of same-host
//! addresses; the paper finds ~1.5 % of prefixes aliased, covering about
//! *half* of all hitlist addresses. This crate implements the full
//! detection pipeline:
//!
//! - [`plan`]: which prefixes to test — every known /64 plus deeper
//!   4-bit levels down to /124 gated on >100 known targets, and
//!   BGP-announced prefixes as-is
//! - [`detector`]: 16-way nybble fan-out probing (one pseudo-random
//!   address per subprefix, Table 3) on ICMPv6 + TCP/80 with
//!   cross-protocol merging
//! - [`window`]: the multi-day sliding window that stabilizes lossy and
//!   ICMP-rate-limited prefixes (Table 4)
//! - [`filter`]: longest-prefix-match filtering of hitlist addresses
//! - [`persist`]: checksummed snapshot encode/decode of the window
//!   state, for the pipeline's save/resume path
//! - [`murdock`]: the static-/96 baseline of Murdock et al. for the
//!   §5.5 comparison
//! - [`fingerprint`]: the §5.4 consistency battery (iTTL, optionstext,
//!   WScale, MSS, WSize, TCP-timestamp same/monotonic/R²) validating
//!   that detected prefixes behave like one machine

pub mod detector;
pub mod filter;
pub mod fingerprint;
pub mod murdock;
pub mod persist;
pub mod plan;
pub mod window;

pub use detector::{Apd, ApdConfig, DayObservation, DayReport};
pub use filter::{AliasFilter, Verdict};
pub use fingerprint::{analyze, collect_evidence, ittl, Class, ConsistencyReport, TsVerdict};
pub use plan::{plan_bgp, plan_targets, plan_targets_set, PlanConfig};
pub use window::WindowState;
