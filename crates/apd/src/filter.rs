//! The aliased-prefix filter: longest-prefix matching over detection
//! results (§5.1: "we perform longest-prefix matching to determine
//! whether a specific IPv6 address falls into an aliased prefix... If a
//! target IP address falls into an aliased prefix, we remove it from
//! that day's ZMapv6 and scamper scans").
//!
//! Multi-level detection can mark a /64 aliased and one of its /68
//! children non-aliased (or vice versa); LPM ensures the most specific
//! verdict wins per address.

use expanse_addr::{AddrSet, AddrStore, Prefix};
use expanse_trie::PrefixTrie;
use std::net::Ipv6Addr;

/// Verdict for a prefix level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The prefix is aliased: remove contained addresses.
    Aliased,
    /// The prefix is explicitly non-aliased (carves out an aliased parent).
    NonAliased,
}

/// The LPM filter.
#[derive(Debug, Clone, Default)]
pub struct AliasFilter {
    trie: PrefixTrie<Verdict>,
    n_aliased: usize,
}

impl AliasFilter {
    /// Build from a set of aliased prefixes only (everything else
    /// implicitly non-aliased).
    pub fn new(aliased: impl IntoIterator<Item = Prefix>) -> Self {
        let mut f = AliasFilter::default();
        for p in aliased {
            f.mark(p, Verdict::Aliased);
        }
        f
    }

    /// Record an explicit verdict for a prefix (multi-level detection
    /// feeds both aliased and non-aliased levels so LPM can carve).
    pub fn mark(&mut self, p: Prefix, v: Verdict) {
        if self.trie.insert(p, v).is_none() && v == Verdict::Aliased {
            self.n_aliased += 1;
        }
    }

    /// Is `addr` inside an aliased prefix, by longest-prefix match?
    pub fn is_aliased(&self, addr: Ipv6Addr) -> bool {
        matches!(self.trie.longest_match(addr), Some((_, Verdict::Aliased)))
    }

    /// Split a hitlist into (kept, removed).
    pub fn split(&self, addrs: &[Ipv6Addr]) -> (Vec<Ipv6Addr>, Vec<Ipv6Addr>) {
        let mut kept = Vec::new();
        let mut removed = Vec::new();
        for &a in addrs {
            if self.is_aliased(a) {
                removed.push(a);
            } else {
                kept.push(a);
            }
        }
        (kept, removed)
    }

    /// Split an interned hitlist into (kept, removed) id sets. Both
    /// outputs preserve ascending-id (= insertion) order, so targets
    /// materialized from `kept` are byte-identical to the slice-based
    /// [`AliasFilter::split`] over the same addresses.
    pub fn split_set<S: AddrStore>(&self, table: &S, ids: &AddrSet) -> (AddrSet, AddrSet) {
        let mut kept = Vec::new();
        let mut removed = Vec::new();
        for id in ids.iter() {
            if self.is_aliased(table.addr(id)) {
                removed.push(id);
            } else {
                kept.push(id);
            }
        }
        (AddrSet::from_sorted(kept), AddrSet::from_sorted(removed))
    }

    /// Number of aliased prefixes in the filter.
    pub fn aliased_count(&self) -> usize {
        self.n_aliased
    }

    /// The aliased prefixes (sorted).
    pub fn aliased_prefixes(&self) -> Vec<Prefix> {
        self.trie
            .iter()
            .filter(|(_, v)| **v == Verdict::Aliased)
            .map(|(p, _)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expanse_addr::AddrTable;

    #[test]
    fn lpm_decides() {
        let mut f = AliasFilter::new(["2001:db8::/48".parse().unwrap()]);
        // Carve a non-aliased /52 inside.
        f.mark("2001:db8:0:1000::/52".parse().unwrap(), Verdict::NonAliased);
        assert!(f.is_aliased("2001:db8::1".parse().unwrap()));
        assert!(!f.is_aliased("2001:db8:0:1234::1".parse().unwrap()));
        assert!(!f.is_aliased("2001:db9::1".parse().unwrap()));
    }

    #[test]
    fn split_hitlist() {
        let f = AliasFilter::new(["2001:db8::/32".parse().unwrap()]);
        let addrs: Vec<Ipv6Addr> = vec![
            "2001:db8::1".parse().unwrap(),
            "2a00::1".parse().unwrap(),
            "2001:db8:ffff::2".parse().unwrap(),
        ];
        let (kept, removed) = f.split(&addrs);
        assert_eq!(kept.len(), 1);
        assert_eq!(removed.len(), 2);
    }

    #[test]
    fn counts() {
        let mut f = AliasFilter::new([
            "2001:db8::/48".parse().unwrap(),
            "2001:db9::/48".parse().unwrap(),
        ]);
        assert_eq!(f.aliased_count(), 2);
        f.mark("2001:db8::/48".parse().unwrap(), Verdict::Aliased); // dup
        assert_eq!(f.aliased_count(), 2);
        assert_eq!(f.aliased_prefixes().len(), 2);
    }

    #[test]
    fn empty_filter_keeps_everything() {
        let f = AliasFilter::default();
        assert!(!f.is_aliased("::1".parse().unwrap()));
    }

    #[test]
    fn split_set_matches_slice_split() {
        let f = AliasFilter::new(["2001:db8::/32".parse().unwrap()]);
        let addrs: Vec<Ipv6Addr> = vec![
            "2001:db8::1".parse().unwrap(),
            "2a00::1".parse().unwrap(),
            "2001:db8:ffff::2".parse().unwrap(),
        ];
        let mut table = AddrTable::new();
        let ids: AddrSet = addrs.iter().map(|&a| table.intern(a)).collect();
        let (kept_ids, removed_ids) = f.split_set(&table, &ids);
        let (kept, removed) = f.split(&addrs);
        assert_eq!(kept_ids.addrs(&table).collect::<Vec<_>>(), kept);
        assert_eq!(removed_ids.addrs(&table).collect::<Vec<_>>(), removed);
    }
}
