//! Probe planning: which prefixes to test at which levels (§5.1).
//!
//! The paper maps hitlist addresses "to all prefixes from 64 to 124, in
//! 4-bit steps", limits probing to prefixes with more than `min_targets`
//! (100) known addresses — exempting /64s so every known /64 is analyzed
//! — and separately probes BGP-announced prefixes as announced.

use expanse_addr::{AddrSet, AddrStore, Prefix};
use std::collections::HashMap;
use std::net::Ipv6Addr;

/// Planning parameters.
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Smallest (shortest) level, inclusive. Paper: 64.
    pub min_level: u8,
    /// Largest (longest) level, inclusive. Paper: 124.
    pub max_level: u8,
    /// Level step in bits. Paper: 4.
    pub step: u8,
    /// Target-count gate for levels other than `min_level`. Paper: >100.
    pub min_targets: usize,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            min_level: 64,
            max_level: 124,
            step: 4,
            min_targets: 100,
        }
    }
}

/// The probed levels for a configuration: `min_level..=max_level` in
/// `step`-bit increments.
fn levels(cfg: &PlanConfig) -> Vec<u8> {
    assert!(cfg.step > 0 && cfg.min_level <= cfg.max_level);
    let mut out = Vec::new();
    let mut level = cfg.min_level;
    while level <= cfg.max_level {
        out.push(level);
        level = level.saturating_add(cfg.step);
        if level == cfg.max_level.saturating_add(cfg.step) {
            break;
        }
    }
    out
}

/// Build the target-based probe plan for a hitlist given as an address
/// slice.
pub fn plan_targets(hitlist: &[Ipv6Addr], cfg: &PlanConfig) -> Vec<Prefix> {
    plan_targets_iter(hitlist.iter().copied(), cfg)
}

/// Build the target-based probe plan straight off the interned store:
/// the pipeline passes its store (any [`AddrStore`] backend) and the
/// live [`AddrSet`] instead of materializing an owned address vector
/// every day.
pub fn plan_targets_set<S: AddrStore>(table: &S, ids: &AddrSet, cfg: &PlanConfig) -> Vec<Prefix> {
    plan_targets_iter(ids.addrs(table), cfg)
}

fn plan_targets_iter(hitlist: impl Iterator<Item = Ipv6Addr>, cfg: &PlanConfig) -> Vec<Prefix> {
    let levels = levels(cfg);
    let mut counts: HashMap<Prefix, usize> = HashMap::new();
    // One pass over the addresses, all levels per address: same counts
    // as a per-level sweep, one address-stream walk.
    for a in hitlist {
        for &level in &levels {
            *counts.entry(Prefix::new(a, level)).or_insert(0) += 1;
        }
    }
    let mut out: Vec<Prefix> = counts
        .into_iter()
        .filter(|(p, n)| p.len() == cfg.min_level || *n > cfg.min_targets)
        .map(|(p, _)| p)
        .collect();
    out.sort();
    out
}

/// Build the BGP-based plan: announced prefixes as-is, fan-out-able
/// (length ≤ 124) only.
pub fn plan_bgp(announcements: &[Prefix]) -> Vec<Prefix> {
    let mut out: Vec<Prefix> = announcements
        .iter()
        .copied()
        .filter(|p| p.len() <= 124)
        .collect();
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use expanse_addr::u128_to_addr;
    use expanse_addr::AddrTable;

    #[test]
    fn all_64s_planned_regardless_of_count() {
        let addrs = vec![
            "2001:db8::1".parse().unwrap(),
            "2001:db8:0:1::1".parse().unwrap(),
        ];
        let plan = plan_targets(&addrs, &PlanConfig::default());
        assert!(plan.contains(&"2001:db8::/64".parse().unwrap()));
        assert!(plan.contains(&"2001:db8:0:1::/64".parse().unwrap()));
        // No deeper levels: only 1 address each.
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn dense_region_planned_at_deeper_levels() {
        // 150 addresses inside one /96, spread over ten /100 children
        // (≤ 16 addresses each, under the >100 gate).
        let addrs: Vec<_> = (0..150u128)
            .map(|i| u128_to_addr((0x2001_0db8u128 << 96) | (i << 24)))
            .collect();
        let plan = plan_targets(&addrs, &PlanConfig::default());
        assert!(plan.contains(&"2001:db8::/64".parse().unwrap()));
        assert!(plan.contains(&"2001:db8::/96".parse().unwrap()));
        // Levels are 4-bit steps.
        assert!(plan.iter().all(|p| p.len() % 4 == 0));
        // The /100s hold ≤ 100 targets each... 150 spread over 16 /100
        // children ⇒ none pass the >100 gate. /68.. /96 all contain 150.
        let l100: Vec<&Prefix> = plan.iter().filter(|p| p.len() == 100).collect();
        assert!(l100.is_empty(), "{l100:?}");
        let l68 = plan.iter().filter(|p| p.len() == 68).count();
        assert_eq!(l68, 1);
    }

    #[test]
    fn gate_is_strictly_greater() {
        let cfg = PlanConfig {
            min_targets: 10,
            ..PlanConfig::default()
        };
        // Exactly 10 in one /96: should NOT pass (paper: "more than 100").
        let addrs: Vec<_> = (0..10u128)
            .map(|i| u128_to_addr((0x2001_0db8u128 << 96) | i))
            .collect();
        let plan = plan_targets(&addrs, &cfg);
        assert!(!plan.iter().any(|p| p.len() == 96));
        // 11 passes.
        let addrs11: Vec<_> = (0..11u128)
            .map(|i| u128_to_addr((0x2001_0db8u128 << 96) | i))
            .collect();
        let plan11 = plan_targets(&addrs11, &cfg);
        assert!(plan11.iter().any(|p| p.len() == 96));
    }

    #[test]
    fn bgp_plan_filters_host_routes() {
        let plan = plan_bgp(&[
            "2001:db8::/32".parse().unwrap(),
            "2001:db8::/32".parse().unwrap(),
            Prefix::host("2001:db8::1".parse().unwrap()),
        ]);
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn empty_hitlist_empty_plan() {
        assert!(plan_targets(&[], &PlanConfig::default()).is_empty());
    }

    #[test]
    fn set_and_slice_plans_agree() {
        let addrs: Vec<_> = (0..150u128)
            .map(|i| u128_to_addr((0x2001_0db8u128 << 96) | (i << 24)))
            .collect();
        let mut table = AddrTable::new();
        let ids: AddrSet = addrs.iter().map(|&a| table.intern(a)).collect();
        let cfg = PlanConfig::default();
        assert_eq!(
            plan_targets_set(&table, &ids, &cfg),
            plan_targets(&addrs, &cfg)
        );
    }
}
