//! Fingerprint consistency tests over APD results (§5.4, Tables 5–6).
//!
//! The premise: if every address of a prefix terminates at one machine,
//! replies must agree on initial TTL, option layout, option values, and
//! — the high-confidence test — expose one global TCP timestamp counter
//! (same value, strictly monotonic across probes, or linear against
//! receive time with R² > 0.8).

use crate::detector::DayObservation;
use expanse_stats::regress::{non_decreasing, ols};
use expanse_zmap6::ReplyKind;

/// Round an observed hop limit up to the initial TTL the stack chose
/// (32, 64, 128, or 255 — §5.4's iTTL).
pub fn ittl(observed: u8) -> u8 {
    match observed {
        0..=32 => 32,
        33..=64 => 64,
        65..=128 => 128,
        _ => 255,
    }
}

/// Evidence collected for one fan-out branch across one or more days.
#[derive(Debug, Clone, Default)]
pub struct BranchEvidence {
    /// Observed initial TTLs (rounded, per probe).
    pub ittl: Vec<u8>,
    /// Observed optionstext strings.
    pub opts: Vec<String>,
    /// Observed window-scale options.
    pub wscale: Vec<Option<u8>>,
    /// Observed MSS options.
    pub mss: Vec<Option<u16>>,
    /// Observed TCP window sizes.
    pub wsize: Vec<u16>,
    /// (receive time in seconds, peer tsval).
    pub ts: Vec<(f64, u32)>,
}

/// Merge evidence from observations (multiple days) of the same prefix.
pub fn collect_evidence(observations: &[&DayObservation]) -> Vec<BranchEvidence> {
    let mut out = vec![BranchEvidence::default(); 16];
    for obs in observations {
        for (b, ev) in out.iter_mut().enumerate() {
            if let Some(r) = obs.icmp_replies.get(b).and_then(|r| r.as_ref()) {
                ev.ittl.push(ittl(r.ttl));
            }
            if let Some(r) = obs.tcp_replies.get(b).and_then(|r| r.as_ref()) {
                ev.ittl.push(ittl(r.ttl));
                if let ReplyKind::SynAck(info) = &r.kind {
                    ev.opts.push(info.options_text.clone());
                    ev.wscale.push(info.wscale);
                    ev.mss.push(info.mss);
                    ev.wsize.push(info.window);
                    if let Some((tsval, _)) = info.timestamps {
                        ev.ts.push((r.at.as_secs_f64(), tsval));
                    }
                }
            }
        }
    }
    out
}

/// Timestamp test verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsVerdict {
    /// All timestamps equal (or all absent on every responding branch).
    SameOrMissing,
    /// Non-decreasing across the whole prefix in receive order.
    Monotonic,
    /// Linear against receive time with R² > 0.8.
    Regression,
    /// None of the tests concluded — says nothing about aliasing.
    Indecisive,
}

impl TsVerdict {
    /// Does the verdict indicate one shared counter?
    pub fn is_consistent(self) -> bool {
        !matches!(self, TsVerdict::Indecisive)
    }
}

/// Full consistency report for one prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// Observed initial TTLs (rounded, per probe).
    pub ittl: bool,
    /// Observed optionstext strings.
    pub opts: bool,
    /// Observed window-scale options.
    pub wscale: bool,
    /// Observed MSS options.
    pub mss: bool,
    /// Observed TCP window sizes.
    pub wsize: bool,
    /// (receive time, tsval) samples for the counter tests.
    pub ts: TsVerdict,
    /// Branches contributing TCP evidence.
    pub tcp_branches: usize,
}

/// Overall classification (Table 6 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// At least one value test failed.
    Inconsistent,
    /// Value tests pass and the timestamp test concludes.
    Consistent,
    /// Value tests pass, timestamps indecisive.
    Indecisive,
}

fn all_equal<T: PartialEq>(it: impl IntoIterator<Item = T>) -> bool {
    let mut iter = it.into_iter();
    match iter.next() {
        None => true,
        Some(first) => iter.all(|x| x == first),
    }
}

/// Run the §5.4 test battery over branch evidence.
pub fn analyze(evidence: &[BranchEvidence]) -> ConsistencyReport {
    let ittl_all: Vec<u8> = evidence
        .iter()
        .flat_map(|e| e.ittl.iter().copied())
        .collect();
    let opts_all: Vec<&String> = evidence.iter().flat_map(|e| e.opts.iter()).collect();
    let wscale_all: Vec<Option<u8>> = evidence
        .iter()
        .flat_map(|e| e.wscale.iter().copied())
        .collect();
    let mss_all: Vec<Option<u16>> = evidence
        .iter()
        .flat_map(|e| e.mss.iter().copied())
        .collect();
    let wsize_all: Vec<u16> = evidence
        .iter()
        .flat_map(|e| e.wsize.iter().copied())
        .collect();
    let mut ts_all: Vec<(f64, u32)> = evidence.iter().flat_map(|e| e.ts.iter().copied()).collect();
    ts_all.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite recv times"));

    let ts = if ts_all.is_empty() {
        // All responding branches lack timestamps: "same (or missing)".
        if opts_all.is_empty() {
            TsVerdict::Indecisive
        } else {
            TsVerdict::SameOrMissing
        }
    } else if ts_all.len() >= 2 && all_equal(ts_all.iter().map(|t| t.1)) {
        TsVerdict::SameOrMissing
    } else if ts_all.len() >= 3 {
        let vals: Vec<u32> = ts_all.iter().map(|t| t.1).collect();
        if non_decreasing(&vals) {
            TsVerdict::Monotonic
        } else {
            let pts: Vec<(f64, f64)> = ts_all.iter().map(|(t, v)| (*t, f64::from(*v))).collect();
            match ols(&pts) {
                Some(fit) if fit.r2 > 0.8 => TsVerdict::Regression,
                _ => TsVerdict::Indecisive,
            }
        }
    } else {
        TsVerdict::Indecisive
    };

    ConsistencyReport {
        ittl: all_equal(ittl_all),
        opts: all_equal(opts_all),
        wscale: all_equal(wscale_all),
        mss: all_equal(mss_all),
        wsize: all_equal(wsize_all),
        ts,
        tcp_branches: evidence.iter().filter(|e| !e.opts.is_empty()).count(),
    }
}

impl ConsistencyReport {
    /// Names of failed value tests.
    pub fn failed_tests(&self) -> Vec<&'static str> {
        let mut v = Vec::new();
        if !self.ittl {
            v.push("iTTL");
        }
        if !self.opts {
            v.push("Optionstext");
        }
        if !self.wscale {
            v.push("WScale");
        }
        if !self.mss {
            v.push("MSS");
        }
        if !self.wsize {
            v.push("WSize");
        }
        v
    }

    /// Table 6 classification.
    pub fn class(&self) -> Class {
        if !self.failed_tests().is_empty() {
            Class::Inconsistent
        } else if self.ts.is_consistent() {
            Class::Consistent
        } else {
            Class::Indecisive
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: Vec<(f64, u32)>) -> BranchEvidence {
        BranchEvidence {
            ittl: vec![64],
            opts: vec!["MSS-SACK-TS-N-WS".to_string()],
            wscale: vec![Some(7)],
            mss: vec![Some(1440)],
            wsize: vec![65535],
            ts,
        }
    }

    #[test]
    fn ittl_rounding() {
        assert_eq!(ittl(30), 32);
        assert_eq!(ittl(32), 32);
        assert_eq!(ittl(33), 64);
        assert_eq!(ittl(57), 64);
        assert_eq!(ittl(120), 128);
        assert_eq!(ittl(129), 255);
        assert_eq!(ittl(250), 255);
    }

    #[test]
    fn consistent_machine_with_monotonic_counter() {
        let evidence: Vec<BranchEvidence> = (0..16)
            .map(|b| ev(vec![(b as f64, 1000 + b * 10)]))
            .collect();
        let r = analyze(&evidence);
        assert!(r.ittl && r.opts && r.wscale && r.mss && r.wsize);
        assert_eq!(r.ts, TsVerdict::Monotonic);
        assert_eq!(r.class(), Class::Consistent);
        assert_eq!(r.tcp_branches, 16);
    }

    #[test]
    fn same_timestamp_everywhere() {
        let evidence: Vec<BranchEvidence> = (0..16).map(|b| ev(vec![(b as f64, 777)])).collect();
        let r = analyze(&evidence);
        assert_eq!(r.ts, TsVerdict::SameOrMissing);
        assert_eq!(r.class(), Class::Consistent);
    }

    #[test]
    fn linear_counter_with_noise_passes_regression() {
        // tsval = 100 t + small deviation, out-of-order enough to break
        // strict monotonicity at equal times.
        let evidence: Vec<BranchEvidence> = (0..16)
            .map(|b| {
                let t = b as f64;
                let v = (100.0 * t) as u32 + if b % 2 == 0 { 3 } else { 0 };
                ev(vec![(t, v), (t + 0.001, v.saturating_sub(2))])
            })
            .collect();
        let r = analyze(&evidence);
        assert!(
            matches!(r.ts, TsVerdict::Regression | TsVerdict::Monotonic),
            "{:?}",
            r.ts
        );
        assert_eq!(r.class(), Class::Consistent);
    }

    #[test]
    fn random_timestamps_indecisive() {
        let vals = [9u32, 4_000_000_000, 17, 2_000_000_000, 5, 3_000_000_000];
        let evidence: Vec<BranchEvidence> = vals
            .iter()
            .enumerate()
            .map(|(i, v)| ev(vec![(i as f64, *v)]))
            .collect();
        let r = analyze(&evidence);
        assert_eq!(r.ts, TsVerdict::Indecisive);
        assert_eq!(r.class(), Class::Indecisive);
    }

    #[test]
    fn differing_mss_is_inconsistent() {
        let mut evidence: Vec<BranchEvidence> =
            (0..16).map(|b| ev(vec![(b as f64, 1000 + b)])).collect();
        evidence[3].mss = vec![Some(1400)];
        let r = analyze(&evidence);
        assert!(!r.mss);
        assert_eq!(r.failed_tests(), vec!["MSS"]);
        assert_eq!(r.class(), Class::Inconsistent);
    }

    #[test]
    fn differing_ittl_detected() {
        let mut evidence: Vec<BranchEvidence> =
            (0..16).map(|b| ev(vec![(b as f64, 1000 + b)])).collect();
        evidence[0].ittl = vec![64, 255]; // the paper's 22-host case
        let r = analyze(&evidence);
        assert!(!r.ittl);
        assert_eq!(r.class(), Class::Inconsistent);
    }

    #[test]
    fn missing_timestamps_with_tcp_is_same_or_missing() {
        let evidence: Vec<BranchEvidence> = (0..16)
            .map(|_| BranchEvidence {
                ittl: vec![64],
                opts: vec!["MSS-SACK-N-WS".to_string()],
                wscale: vec![Some(7)],
                mss: vec![Some(1440)],
                wsize: vec![65535],
                ts: vec![],
            })
            .collect();
        let r = analyze(&evidence);
        assert_eq!(r.ts, TsVerdict::SameOrMissing);
        assert_eq!(r.class(), Class::Consistent);
    }

    #[test]
    fn no_evidence_is_indecisive() {
        let r = analyze(&vec![BranchEvidence::default(); 16]);
        assert_eq!(r.ts, TsVerdict::Indecisive);
        assert_eq!(r.class(), Class::Indecisive);
        assert_eq!(r.tcp_branches, 0);
    }
}
