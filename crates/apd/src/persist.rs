//! Snapshot persistence for the aliased-prefix detector.
//!
//! The detector's only long-lived state is the per-prefix sliding
//! window map (the LPM filter is derived from it on demand), so a
//! snapshot stores exactly that: each prefix with its window length,
//! the day bitmaps it currently holds, the previous classification,
//! and the flip counter. Prefixes are written in sorted order so the
//! byte stream never depends on hash-map iteration order.

use crate::detector::{Apd, ApdConfig};
use crate::window::WindowState;
use expanse_addr::codec::{self, CodecError, Decoder, Encoder};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::io::{Read, Write};

/// Write one prefix's window state (everything but the prefix key).
fn write_window<W: Write>(enc: &mut Encoder<W>, w: &WindowState) -> Result<(), CodecError> {
    enc.put_u64(w.window as u64)?;
    enc.put_len(w.days.len())?;
    for &d in &w.days {
        enc.put_u16(d)?;
    }
    match w.last {
        None => enc.put_u8(0)?,
        Some(false) => enc.put_u8(1)?,
        Some(true) => enc.put_u8(2)?,
    }
    enc.put_u32(w.flips)
}

/// Decode one window state written by [`write_window`], validating it
/// against the detector configuration.
fn read_window<R: Read>(cfg: &ApdConfig, dec: &mut Decoder<R>) -> Result<WindowState, CodecError> {
    let window = usize::try_from(dec.get_u64()?)
        .map_err(|_| CodecError::Corrupt("window length out of range"))?;
    // Every live WindowState is built with the config's window
    // (`WindowState::new(self.cfg.window)`), so a disagreement
    // means the snapshot was saved under a different ApdConfig
    // — resuming would mix window lengths across prefixes with
    // no error. Surface the mismatch instead.
    if window != cfg.window {
        return Err(CodecError::Corrupt(
            "snapshot window length disagrees with detector config",
        ));
    }
    let held = dec.get_len()?;
    // Saturating guard: a corrupted `window` near usize::MAX
    // must reject as corruption, not overflow the `+ 1`; and
    // the capacity comes from the bounded hint, never the raw
    // length prefix (see the codec's never-panic contract).
    if held > window.saturating_add(1) {
        return Err(CodecError::Corrupt(
            "window holds more days than its length",
        ));
    }
    let mut days = VecDeque::with_capacity(Decoder::<R>::reserve_hint(held));
    for _ in 0..held {
        days.push_back(dec.get_u16()?);
    }
    let last = match dec.get_u8()? {
        0 => None,
        1 => Some(false),
        2 => Some(true),
        _ => {
            return Err(CodecError::Corrupt(
                "window classification tag out of range",
            ))
        }
    };
    let flips = dec.get_u32()?;
    Ok(WindowState {
        window,
        days,
        last,
        flips,
    })
}

impl Apd {
    /// Serialize the detector's window state into an open snapshot
    /// envelope.
    pub fn encode<W: Write>(&self, enc: &mut Encoder<W>) -> Result<(), CodecError> {
        let mut entries: Vec<_> = self.windows.iter().collect();
        entries.sort_by_key(|(p, _)| **p);
        enc.put_len(entries.len())?;
        for (p, w) in entries {
            codec::write_prefix(enc, *p)?;
            write_window(enc, w)?;
        }
        Ok(())
    }

    /// Rebuild a detector from [`Apd::encode`] output. The config is
    /// not part of the snapshot — it comes back from the pipeline
    /// configuration, like every other knob.
    pub fn decode<R: Read>(cfg: ApdConfig, dec: &mut Decoder<R>) -> Result<Apd, CodecError> {
        let n = dec.get_len()?;
        let mut windows = HashMap::with_capacity(Decoder::<R>::reserve_hint(n));
        let mut prev = None;
        for _ in 0..n {
            let p = codec::read_prefix(dec)?;
            if prev.is_some_and(|q| q >= p) {
                return Err(CodecError::Corrupt("window prefixes not strictly sorted"));
            }
            prev = Some(p);
            let w = read_window(&cfg, dec)?;
            windows.insert(p, w);
        }
        Ok(Apd {
            cfg,
            windows,
            // A freshly decoded snapshot is by definition a sync point.
            dirty: BTreeSet::new(),
        })
    }

    /// Declare the current state a journal sync point: the next
    /// [`Apd::encode_delta`] is relative to exactly this state.
    pub fn mark_synced(&mut self) {
        self.dirty.clear();
    }

    /// Prefixes whose window state changed since the last sync point.
    pub fn delta_prefixes(&self) -> usize {
        self.dirty.len()
    }

    /// Serialize every window touched since the last sync point into an
    /// open delta frame. Windows are never removed, so rewriting the
    /// touched entries (sorted, full state each — a window is ≤
    /// `window + 1` small bitmaps) is the complete difference.
    pub fn encode_delta<W: Write>(&self, enc: &mut Encoder<W>) -> Result<(), CodecError> {
        enc.put_len(self.dirty.len())?;
        for p in &self.dirty {
            let w = self
                .windows
                .get(p)
                .expect("dirty prefix lost its window state");
            codec::write_prefix(enc, *p)?;
            write_window(enc, w)?;
        }
        Ok(())
    }

    /// Apply a delta written by [`Apd::encode_delta`]: upsert each
    /// carried window. Afterwards this state *is* the new sync point.
    pub fn apply_delta<R: Read>(&mut self, dec: &mut Decoder<R>) -> Result<(), CodecError> {
        let n = dec.get_len()?;
        let mut prev = None;
        for _ in 0..n {
            let p = codec::read_prefix(dec)?;
            if prev.is_some_and(|q| q >= p) {
                return Err(CodecError::Corrupt("delta prefixes not strictly sorted"));
            }
            prev = Some(p);
            let w = read_window(&self.cfg, dec)?;
            self.windows.insert(p, w);
        }
        self.mark_synced();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expanse_addr::codec::{Decoder, Encoder};
    use expanse_addr::Prefix;

    #[test]
    fn roundtrip_preserves_windows_and_classification() {
        let cfg = ApdConfig {
            window: 3,
            ..ApdConfig::default()
        };
        let mut apd = Apd::new(cfg.clone());
        let p1: Prefix = "2001:db8:1::/48".parse().unwrap();
        let p2: Prefix = "2001:db8:2::/48".parse().unwrap();
        // p1 goes partial mid-way; p2 becomes and stays aliased (its
        // half-days merge inside the window).
        for (d1, d2) in [(0xffffu16, 0x00ff), (0x0001, 0xff00), (0xffff, 0x0000)] {
            let w = cfg.window;
            apd.windows
                .entry(p1)
                .or_insert_with(|| WindowState::new(w))
                .push_day(d1);
            apd.windows
                .entry(p2)
                .or_insert_with(|| WindowState::new(w))
                .push_day(d2);
        }

        let mut buf = Vec::new();
        let mut enc = Encoder::new(&mut buf, b"APDSTEST", 1).unwrap();
        apd.encode(&mut enc).unwrap();
        enc.finish().unwrap();
        let mut dec = Decoder::new(buf.as_slice(), b"APDSTEST", 1).unwrap();
        let back = Apd::decode(cfg.clone(), &mut dec).unwrap();
        dec.finish().unwrap();

        assert_eq!(back.windows, apd.windows);
        assert_eq!(back.aliased_prefixes(), apd.aliased_prefixes());
        assert_eq!(back.unstable_prefixes(), apd.unstable_prefixes());

        // Resuming under a different window length is a config
        // mismatch, not a valid restore: classification would mix
        // window lengths across prefixes. Must error.
        let mut dec = Decoder::new(buf.as_slice(), b"APDSTEST", 1).unwrap();
        assert!(matches!(
            Apd::decode(ApdConfig { window: 5, ..cfg }, &mut dec),
            Err(CodecError::Corrupt(
                "snapshot window length disagrees with detector config"
            ))
        ));
    }

    /// Detector state as one full envelope, for round-trip replicas.
    fn full_roundtrip(apd: &Apd) -> Apd {
        let mut buf = Vec::new();
        let mut enc = Encoder::new(&mut buf, b"APDSTEST", 1).unwrap();
        apd.encode(&mut enc).unwrap();
        enc.finish().unwrap();
        let mut dec = Decoder::new(buf.as_slice(), b"APDSTEST", 1).unwrap();
        let back = Apd::decode(apd.cfg.clone(), &mut dec).unwrap();
        dec.finish().unwrap();
        back
    }

    /// Push one day into a prefix's window the way `run_day` does,
    /// dirty tracking included.
    fn push(apd: &mut Apd, p: Prefix, merged: u16) {
        let w = apd.cfg.window;
        apd.windows
            .entry(p)
            .or_insert_with(|| WindowState::new(w))
            .push_day(merged);
        apd.dirty.insert(p);
    }

    #[test]
    fn delta_upserts_only_touched_windows() {
        let cfg = ApdConfig {
            window: 3,
            ..ApdConfig::default()
        };
        let mut apd = Apd::new(cfg.clone());
        let p1: Prefix = "2001:db8:1::/48".parse().unwrap();
        let p2: Prefix = "2001:db8:2::/48".parse().unwrap();
        let p3: Prefix = "2001:db8:3::/48".parse().unwrap();
        push(&mut apd, p1, 0x00ff);
        push(&mut apd, p2, 0xffff);
        apd.mark_synced();
        let mut replica = full_roundtrip(&apd);

        // One existing window advances, one brand-new prefix appears;
        // p2 is untouched and must not be in the delta.
        push(&mut apd, p1, 0xff00);
        push(&mut apd, p3, 0xffff);
        assert_eq!(apd.delta_prefixes(), 2);

        let mut delta = Vec::new();
        let mut enc = Encoder::new(&mut delta, b"APDDTEST", 1).unwrap();
        apd.encode_delta(&mut enc).unwrap();
        enc.finish().unwrap();
        let mut dec = Decoder::new(delta.as_slice(), b"APDDTEST", 1).unwrap();
        replica.apply_delta(&mut dec).unwrap();
        dec.finish().unwrap();

        assert_eq!(replica.windows, apd.windows);
        assert_eq!(replica.aliased_prefixes(), apd.aliased_prefixes());
        assert_eq!(replica.delta_prefixes(), 0, "apply ends at a sync point");

        // A delta saved under a different window length is a config
        // mismatch on apply, exactly like the full snapshot path.
        let mut dec = Decoder::new(delta.as_slice(), b"APDDTEST", 1).unwrap();
        let mut other = Apd::new(ApdConfig {
            window: 5,
            ..cfg.clone()
        });
        assert!(matches!(
            other.apply_delta(&mut dec),
            Err(CodecError::Corrupt(
                "snapshot window length disagrees with detector config"
            ))
        ));
    }

    #[test]
    fn huge_window_field_rejected_without_panic() {
        // Regression: a corrupted window length of u64::MAX used to
        // overflow the `window + 1` guard (debug panic), and a huge
        // `held` used to reach the allocator — both before the
        // checksum check. Crafted streams must error instead.
        for (window, held) in [(u64::MAX, 1usize), (1 << 50, 1 << 30)] {
            let mut buf = Vec::new();
            let mut enc = Encoder::new(&mut buf, b"APDSTEST", 1).unwrap();
            enc.put_len(1).unwrap();
            codec::write_prefix(&mut enc, "2001:db8::/48".parse().unwrap()).unwrap();
            enc.put_u64(window).unwrap();
            enc.put_len(held).unwrap();
            enc.finish().unwrap();
            let mut dec = Decoder::new(buf.as_slice(), b"APDSTEST", 1).unwrap();
            // Truncated day payload: either the guard fires or the read
            // hits EOF — an error either way, never a panic or abort.
            assert!(Apd::decode(ApdConfig::default(), &mut dec).is_err());
        }
    }

    #[test]
    fn overfull_window_rejected() {
        // days held may not exceed window + 1 (3 ⇒ at most 4 days, the
        // default config's window so the length itself passes).
        let mut buf = Vec::new();
        let mut enc = Encoder::new(&mut buf, b"APDSTEST", 1).unwrap();
        enc.put_len(1).unwrap();
        codec::write_prefix(&mut enc, "2001:db8::/48".parse().unwrap()).unwrap();
        enc.put_u64(3).unwrap();
        enc.put_len(5).unwrap();
        for d in [1u16, 2, 3, 4, 5] {
            enc.put_u16(d).unwrap();
        }
        enc.put_u8(0).unwrap();
        enc.put_u32(0).unwrap();
        enc.finish().unwrap();
        let mut dec = Decoder::new(buf.as_slice(), b"APDSTEST", 1).unwrap();
        assert!(matches!(
            Apd::decode(ApdConfig::default(), &mut dec),
            Err(CodecError::Corrupt(
                "window holds more days than its length"
            ))
        ));
    }
}
