//! A synthetic IPv6 Internet for measurement-system experiments.
//!
//! This crate is the substitute substrate for the paper's real-world
//! vantage (see `DESIGN.md` §1): a deterministic, generative model of
//! autonomous systems, BGP announcements, addressing schemes, live hosts
//! with TCP/IP personalities, aliased CDN prefixes, lossy and
//! rate-limited corners, hitlist sources, an rDNS tree, and crowdsourcing
//! panels.
//!
//! The model implements [`expanse_netsim::Network`]: probers inject raw
//! IPv6 frames and receive raw reply frames, exactly as they would from a
//! raw socket.
//!
//! ```
//! use expanse_model::{InternetModel, ModelConfig};
//! use expanse_netsim::{Network, Time};
//! use expanse_packet::{Datagram, Icmpv6Message};
//!
//! let mut net = InternetModel::build(ModelConfig::tiny(42));
//! let target = net.population.special.cdn_hook_48s[0].first();
//! let probe = Datagram::icmpv6(
//!     "2001:db8:ffff::1".parse().unwrap(),
//!     target,
//!     64,
//!     Icmpv6Message::EchoRequest { ident: 1, seq: 1, payload: vec![] },
//! );
//! let replies = net.inject(Time::ZERO, &probe.emit());
//! assert!(!replies.is_empty(), "aliased prefixes answer everything");
//! ```

pub mod alias;
pub mod bgp;
pub mod churn;
pub mod config;
pub mod crowd;
pub mod engine;
pub mod fingerprint;
pub mod host;
pub mod ids;
pub mod paths;
pub mod population;
pub mod rdns;
pub mod scenario;
pub mod scheme;
pub mod sources;

pub use config::ModelConfig;
pub use engine::ScanView;
pub use ids::{AsCategory, AsInfo, Asn};
pub use population::{Population, SitePool, SpecialPrefixes};
pub use scheme::Scheme;
pub use sources::{Source, SourceId};

use expanse_addr::Prefix;
use expanse_trie::PrefixTrie;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The assembled synthetic Internet.
///
/// Deliberately not `Clone`: a full-model copy per scan job measured
/// 3.7× slower than the snapshot design, so the battery fan-out shares
/// `&self` via [`expanse_netsim::SnapshotNetwork`] and each worker owns
/// only a cheap [`ScanView`] day-state copy. Callers needing a second
/// independent world rebuild with [`InternetModel::build`] (it is
/// deterministic in `config.seed`).
#[derive(Debug)]
pub struct InternetModel {
    /// Plot configuration used for layout.
    pub config: ModelConfig,
    /// The AS roster.
    pub ases: Vec<AsInfo>,
    /// The global routing table.
    pub bgp: bgp::BgpTable,
    /// Population.
    pub population: Population,
    /// Forwarding-path model (hop counts, router identities).
    pub paths: paths::PathModel,
    /// Adversarial periphery scenario layer (empty when disabled).
    pub scenario: scenario::ScenarioState,
    /// Lossy prefixes as a trie for per-packet lookup.
    pub(crate) lossy_trie: PrefixTrie<()>,
    pub(crate) day_state: engine::DayState,
    as_index: HashMap<Asn, usize>,
}

impl InternetModel {
    /// Build the model from a configuration. Deterministic in
    /// `config.seed`.
    pub fn build(config: ModelConfig) -> Self {
        config.validate();
        let ases = build_ases(&config);
        let mut announcements = bgp::allocate(&ases, config.mean_prefixes_per_as, config.seed);
        let paths = paths::PathModel::new(config.seed);
        let mut population = population::Builder::new(&config).build(&ases, &announcements, &paths);
        // Scenario construction runs strictly after the population build
        // so the builder's sequential RNG stream is untouched: with the
        // scenario disabled the model stays byte-identical.
        let scenario = scenario::build(&config.scenario, config.seed, &mut population);
        // CDNs announce their aliased /48s in BGP, as Amazon does — this
        // is what makes the Fig 5 "hook" visible at BGP granularity and
        // lets BGP-based APD (§5.1) see the phenomenon without targets.
        {
            let tmp = bgp::BgpTable::new(announcements.clone());
            for (p48, _) in population.aliases.iter() {
                if p48.len() == 48 {
                    if let Some((_, asn)) = tmp.lookup(p48.first()) {
                        announcements.push((p48, asn));
                    }
                }
            }
            announcements.sort();
            announcements.dedup();
        }
        let bgp_table = bgp::BgpTable::new(announcements);
        let mut lossy_trie = PrefixTrie::new();
        for p in &population.lossy {
            lossy_trie.insert(*p, ());
        }
        let as_index = ases.iter().enumerate().map(|(i, a)| (a.asn, i)).collect();
        let mut model = InternetModel {
            config,
            ases,
            bgp: bgp_table,
            population,
            paths,
            scenario,
            lossy_trie,
            // placeholder, replaced below (DayState::new needs &self)
            day_state: engine::DayState::detached(),
            as_index,
        };
        model.day_state = engine::DayState::new(&model, 0);
        model
    }

    /// Advance the model to probing day `day` (resets middlebox state,
    /// changes churn/flapping outcomes).
    pub fn set_day(&mut self, day: u16) {
        self.day_state = engine::DayState::new(self, day);
    }

    /// Current probing day.
    pub fn day(&self) -> u16 {
        self.day_state.day
    }

    /// Category of an AS.
    pub fn as_category(&self, asn: Asn) -> Option<AsCategory> {
        self.as_index.get(&asn).map(|i| self.ases[*i].category)
    }

    /// Org name of an AS.
    pub fn as_name(&self, asn: Asn) -> Option<&str> {
        self.as_index.get(&asn).map(|i| self.ases[*i].name.as_str())
    }

    /// Ground truth: is `addr` inside a (served) aliased region?
    pub fn truth_aliased(&self, addr: std::net::Ipv6Addr) -> bool {
        self.population.aliases.resolve(addr).is_some()
    }

    /// Ground truth: covering BGP prefix.
    pub fn bgp_prefix_of(&self, addr: std::net::Ipv6Addr) -> Option<Prefix> {
        self.bgp.lookup(addr).map(|(p, _)| p)
    }

    /// Scenario ground truth: what hitlist sources would learn on `day`
    /// (empty with the scenario layer disabled). See
    /// [`scenario::ScenarioState::feed`].
    pub fn scenario_feed(&self, day: u16) -> Vec<std::net::Ipv6Addr> {
        self.scenario.feed(day)
    }

    /// Scenario ground truth: previously-feedable addresses that can no
    /// longer answer on `day` — rotation ghosts and expired temporary
    /// privacy addresses. See [`scenario::ScenarioState::ghosts`].
    pub fn scenario_ghosts(&self, day: u16) -> Vec<std::net::Ipv6Addr> {
        self.scenario.ghosts(day)
    }

    /// Ground truth: would the model answer a probe to `addr` on `day`
    /// on at least one protocol, ignoring loss and rate limiting?
    /// Covers aliased regions, the static population, and the scenario
    /// layer's per-day responders.
    pub fn truth_responsive(&self, day: u16, addr: std::net::Ipv6Addr) -> bool {
        if self.population.aliases.resolve(addr).is_some() {
            return true;
        }
        let key = expanse_addr::addr_to_u128(addr);
        if let Some(h) = self.population.hosts.get(&key) {
            if h.online(day) && !h.protos.is_empty() {
                return true;
            }
        }
        self.scenario.enabled() && self.scenario.day_hosts(day).contains_key(&key)
    }
}

/// Build the AS roster with category mix per
/// [`AsCategory::population_share`].
pub fn build_ases(config: &ModelConfig) -> Vec<AsInfo> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xa5e5);
    let mut out = Vec::with_capacity(config.n_as);
    let mut next_asn = 64500u32;
    let mut ordinals: HashMap<AsCategory, usize> = HashMap::new();
    // Guarantee at least 2 CDNs (hook + inner hook), 1 transit, 1 hoster,
    // eyeballs regardless of scale. (Popped back-to-front.)
    let mut forced = vec![
        AsCategory::IspEyeball,
        AsCategory::IspEyeball,
        AsCategory::IspEyeball,
        AsCategory::Hoster,
        AsCategory::Transit,
        AsCategory::Cdn,
        AsCategory::Cdn,
    ];
    for _ in 0..config.n_as {
        let cat = forced.pop().unwrap_or_else(|| {
            let x: f64 = rng.random_range(0.0..1.0);
            let mut acc = 0.0;
            let mut chosen = AsCategory::Enterprise;
            for c in AsCategory::ALL {
                acc += c.population_share();
                if x < acc {
                    chosen = c;
                    break;
                }
            }
            chosen
        });
        let ord = ordinals.entry(cat).or_insert(0);
        out.push(AsInfo::new(Asn(next_asn), cat, *ord));
        *ord += 1;
        next_asn += 1 + (rng.random_range(0..10u32));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_deterministically() {
        let a = InternetModel::build(ModelConfig::tiny(1));
        let b = InternetModel::build(ModelConfig::tiny(1));
        assert_eq!(a.ases.len(), b.ases.len());
        assert_eq!(a.bgp.len(), b.bgp.len());
        assert_eq!(a.population.live_hosts(), b.population.live_hosts());
    }

    #[test]
    fn forced_categories_present() {
        let m = InternetModel::build(ModelConfig::tiny(2));
        let cdns = m
            .ases
            .iter()
            .filter(|a| a.category == AsCategory::Cdn)
            .count();
        assert!(cdns >= 2, "need ≥2 CDN ASes, got {cdns}");
        assert!(m.ases.iter().any(|a| a.category == AsCategory::IspEyeball));
    }

    #[test]
    fn as_lookup_helpers() {
        let m = InternetModel::build(ModelConfig::tiny(3));
        let first = &m.ases[0];
        assert_eq!(m.as_category(first.asn), Some(first.category));
        assert_eq!(m.as_name(first.asn), Some(first.name.as_str()));
        assert_eq!(m.as_category(Asn(1)), None);
    }

    #[test]
    fn truth_helpers() {
        let m = InternetModel::build(ModelConfig::tiny(4));
        let hook = m.population.special.cdn_hook_48s[0];
        assert!(m.truth_aliased(hook.first()));
        let p = m.bgp_prefix_of(hook.first()).unwrap();
        assert!(p.covers(&hook) || hook.covers(&p));
    }

    #[test]
    fn day_advances() {
        let mut m = InternetModel::build(ModelConfig::tiny(5));
        assert_eq!(m.day(), 0);
        m.set_day(7);
        assert_eq!(m.day(), 7);
    }
}
