//! IPv6 addressing schemes.
//!
//! §4 of the paper finds that the hitlist collapses into ~6 addressing
//! schemes when clustered by per-nybble entropy (Fig 2a) — counters,
//! structured subnetting, pseudo-random IIDs, and MAC-based (EUI-64)
//! IIDs. The model generates addresses with exactly these six generating
//! processes, so the entropy-clustering crate has real structure to find.
//!
//! All generation is deterministic in `(site, seed)`.

use expanse_addr::{u128_to_addr, MacAddr, Prefix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv6Addr;

/// A generating addressing scheme for one site (a /32–/48 allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Nearly everything fixed; the last nybbles of subnet and IID are
    /// small counters. The paper's most popular cluster.
    TinyCounter,
    /// Structured subnetting (department/рack nybbles) with counter IIDs —
    /// more nybbles in play, still low entropy each. Cluster 2.
    StructuredCounter,
    /// Pseudo-random IIDs (privacy extensions / random static): maximal
    /// entropy on nybbles 17–32. Cluster 3.
    RandomIid,
    /// Service-word IIDs (`::1`, `::53`, `::443`, `::25`) over a moderate
    /// subnet spread. Cluster 4.
    ServiceWords,
    /// EUI-64 SLAAC with a *concentrated* vendor pool (ZTE/AVM home
    /// routers — the scamper CPE population of §3). Cluster 5.
    Eui64Cpe,
    /// EUI-64 SLAAC with a diverse vendor pool. Cluster 6.
    Eui64Mixed,
}

impl Scheme {
    /// All schemes.
    pub const ALL: [Scheme; 6] = [
        Scheme::TinyCounter,
        Scheme::StructuredCounter,
        Scheme::RandomIid,
        Scheme::ServiceWords,
        Scheme::Eui64Cpe,
        Scheme::Eui64Mixed,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::TinyCounter => "tiny-counter",
            Scheme::StructuredCounter => "structured-counter",
            Scheme::RandomIid => "random-iid",
            Scheme::ServiceWords => "service-words",
            Scheme::Eui64Cpe => "eui64-cpe",
            Scheme::Eui64Mixed => "eui64-mixed",
        }
    }

    /// Does this scheme produce `ff:fe` SLAAC addresses?
    pub fn is_eui64(self) -> bool {
        matches!(self, Scheme::Eui64Cpe | Scheme::Eui64Mixed)
    }

    /// Generate `n` distinct addresses under `site` (site length ≤ 64).
    ///
    /// # Panics
    /// Panics if `site.len() > 64`.
    pub fn generate(self, site: Prefix, n: usize, seed: u64) -> Vec<Ipv6Addr> {
        assert!(site.len() <= 64, "site must be /64 or shorter");
        let mut rng = StdRng::seed_from_u64(
            seed ^ (site.bits() >> 64) as u64 ^ site.bits() as u64 ^ u64::from(site.len()),
        );
        let subnet_bits = 64 - u32::from(site.len());
        let mut out = Vec::with_capacity(n);
        let mut seen = std::collections::HashSet::with_capacity(n);
        let mut push = |addr: u128, out: &mut Vec<Ipv6Addr>| {
            if seen.insert(addr) {
                out.push(u128_to_addr(addr));
                true
            } else {
                false
            }
        };
        let base = site.bits();
        let subnet = |v: u64| -> u128 {
            if subnet_bits == 0 {
                0
            } else {
                u128::from(v & ((1u64 << subnet_bits.min(63)) - 1).max(1)) << 64
            }
        };
        let mut guard = 0usize;
        while out.len() < n && guard < n * 20 + 64 {
            guard += 1;
            let addr = match self {
                Scheme::TinyCounter => {
                    // 1-2 subnets, IIDs count from 1.
                    let s = subnet(u64::from(rng.random_range(0..2u32)));
                    let iid = 1 + (out.len() as u128 / 2);
                    base | s | iid
                }
                Scheme::StructuredCounter => {
                    // Structured subnet: top subnet nybble = "site area"
                    // (0-3), next = rack (0-7); IID = vlan nybble high in
                    // the IID + a wide counter — a visibly different
                    // entropy silhouette from TinyCounter.
                    let area = rng.random_range(0..4u64);
                    let rack = rng.random_range(0..8u64);
                    let s = subnet(
                        (area << (subnet_bits.saturating_sub(4)))
                            | (rack << (subnet_bits.saturating_sub(8))),
                    );
                    let vlan = rng.random_range(0..8u128);
                    let counter = rng.random_range(1..4000u128);
                    base | s | (vlan << 56) | counter
                }
                Scheme::RandomIid => {
                    let s = subnet(u64::from(rng.random_range(0..4u32)));
                    base | s | u128::from(rng.random::<u64>())
                }
                Scheme::ServiceWords => {
                    // Wide subnet spread (two hot nybbles) distinguishes
                    // this scheme's fingerprint from TinyCounter's.
                    const WORDS: [u64; 8] = [0x1, 0x2, 0x3, 0x25, 0x53, 0x80, 0x443, 0x1111];
                    let s = subnet(rng.random_range(0..256u64));
                    let word = WORDS[rng.random_range(0..WORDS.len())];
                    base | s | u128::from(word)
                }
                Scheme::Eui64Cpe => {
                    // Two dominant OUIs (ZTE-like, AVM-like) + a thin tail.
                    let oui = match rng.random_range(0..100u32) {
                        0..=47 => [0x00, 0x1e, 0x73],  // "ZTE"
                        48..=95 => [0xbc, 0x05, 0x43], // "AVM"
                        _ => [0x00, 0x25, 0x9e],       // "Huawei"
                    };
                    let mac = MacAddr::from_oui(oui, rng.random_range(0..1 << 24));
                    // One customer per /64: subnet is a dense customer id.
                    let s = subnet(rng.random_range(0..4096u64));
                    base | s | u128::from(mac.eui64_iid())
                }
                Scheme::Eui64Mixed => {
                    let oui = [
                        rng.random_range(0..64u8),
                        rng.random::<u8>(),
                        rng.random::<u8>(),
                    ];
                    let mac = MacAddr::from_oui(oui, rng.random_range(0..1 << 24));
                    let s = subnet(rng.random_range(0..256u64));
                    base | s | u128::from(mac.eui64_iid())
                }
            };
            push(addr, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expanse_addr::{is_eui64, nybbles::nybble};
    use expanse_stats::entropy::nybble_entropy;

    fn site() -> Prefix {
        "2001:db8::/32".parse().unwrap()
    }

    fn entropy_profile(addrs: &[Ipv6Addr]) -> Vec<f64> {
        (0..32)
            .map(|i| nybble_entropy(addrs.iter().map(|a| nybble(*a, i))))
            .collect()
    }

    #[test]
    fn deterministic_and_contained() {
        for scheme in Scheme::ALL {
            let a = scheme.generate(site(), 200, 42);
            let b = scheme.generate(site(), 200, 42);
            assert_eq!(a, b, "{scheme:?} not deterministic");
            assert!(
                a.iter().all(|x| site().contains(*x)),
                "{scheme:?} escaped site"
            );
            // Distinctness.
            let mut dedup = a.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), a.len(), "{scheme:?} produced duplicates");
        }
    }

    #[test]
    fn tiny_counter_is_low_entropy() {
        let addrs = Scheme::TinyCounter.generate(site(), 300, 1);
        let prof = entropy_profile(&addrs);
        // Almost all nybbles constant; only the very last few vary.
        let high = prof.iter().filter(|&&h| h > 0.3).count();
        assert!(high <= 5, "too many varying nybbles: {high} ({prof:?})");
        assert!(prof[31] > 0.3, "last nybble should count");
    }

    #[test]
    fn random_iid_is_high_entropy_in_iid() {
        let addrs = Scheme::RandomIid.generate(site(), 500, 1);
        let prof = entropy_profile(&addrs);
        let iid_mean: f64 = prof[17..32].iter().sum::<f64>() / 15.0;
        assert!(iid_mean > 0.9, "iid_mean={iid_mean}");
        // Network half (after the /32) nearly constant.
        assert!(prof[0..8].iter().all(|&h| h == 0.0));
    }

    #[test]
    fn eui64_has_fffe_marker() {
        for scheme in [Scheme::Eui64Cpe, Scheme::Eui64Mixed] {
            let addrs = scheme.generate(site(), 200, 9);
            assert!(addrs.iter().all(|a| is_eui64(*a)), "{scheme:?}");
            let prof = entropy_profile(&addrs);
            // Nybbles 22-25 (0-based) hold ff:fe — constant.
            assert_eq!(prof[22], 0.0);
            assert_eq!(prof[23], 0.0);
            assert_eq!(prof[24], 0.0);
            assert_eq!(prof[25], 0.0);
            // Device-id nybbles vary.
            assert!(prof[29] > 0.5, "{scheme:?}: {prof:?}");
        }
    }

    #[test]
    fn cpe_ouis_concentrated() {
        let addrs = Scheme::Eui64Cpe.generate(site(), 1000, 3);
        let ztes = addrs
            .iter()
            .filter_map(|a| expanse_addr::mac_from_eui64(*a))
            .filter(|m| m.oui() == [0x00, 0x1e, 0x73])
            .count();
        let share = ztes as f64 / addrs.len() as f64;
        assert!((share - 0.48).abs() < 0.06, "ZTE share={share}");
    }

    #[test]
    fn service_words_low_iid_entropy() {
        let addrs = Scheme::ServiceWords.generate(site(), 300, 5);
        let prof = entropy_profile(&addrs);
        // IID nybbles mostly constant except the word nybbles at the end.
        assert!(prof[17..28].iter().all(|&h| h < 0.2), "{prof:?}");
    }

    #[test]
    fn works_on_48_and_64_sites() {
        let p48: Prefix = "2001:db8:1::/48".parse().unwrap();
        let p64: Prefix = "2001:db8:1:2::/64".parse().unwrap();
        for scheme in Scheme::ALL {
            for p in [p48, p64] {
                let addrs = scheme.generate(p, 50, 7);
                assert!(!addrs.is_empty());
                assert!(addrs.iter().all(|a| p.contains(*a)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "site must be /64 or shorter")]
    fn long_site_panics() {
        Scheme::TinyCounter.generate("2001:db8::/96".parse().unwrap(), 1, 0);
    }
}
