//! The packet-answering engine: `InternetModel` as a [`Network`].
//!
//! Every probe the scanners emit lands here as raw IPv6 bytes. The engine
//! routes it (BGP + hop model), applies weather (loss, ICMP rate limits,
//! SYN proxies), resolves the responder (aliased region, live host, or
//! nobody), and emits byte-exact replies.

use crate::churn;
use crate::fingerprint::MachineId;
use crate::host::HostKind;
use crate::scenario::ScenarioResponder;
use crate::InternetModel;
use expanse_addr::fanout::splitmix64;
use expanse_addr::{addr_to_u128, Prefix};
use expanse_netsim::{Delivery, Duration, Network, SynProxy, Time, TokenBucket};
use expanse_packet::{
    dns, icmpv6, quic, Datagram, Icmpv6Message, ProtoSet, Protocol, TcpFlags, TcpSegment,
    Transport, UdpDatagram,
};
use std::collections::BTreeMap;
use std::net::Ipv6Addr;
use std::sync::Arc;

/// Per-day mutable middlebox state, rebuilt on `set_day`.
#[derive(Debug, Clone)]
pub(crate) struct DayState {
    pub day: u16,
    pub icmp_buckets: Vec<(Prefix, TokenBucket)>,
    pub syn_proxies: Vec<(Prefix, SynProxy)>,
    /// The scenario layer's per-day responder table (rotation hosts of
    /// the current epoch, today's temporary privacy addresses). Shared
    /// read-only across snapshots — only the buckets above are per-view
    /// mutable state.
    pub scenario_hosts: Arc<BTreeMap<u128, ScenarioResponder>>,
}

impl DayState {
    pub(crate) fn new(model: &InternetModel, day: u16) -> Self {
        let mut icmp_buckets: Vec<(Prefix, TokenBucket)> =
            std::iter::once(model.population.special.rate_limit_parent)
                .map(|p| {
                    let tokens = churn::rate_limit_day_tokens(model.config.seed, day);
                    (
                        p,
                        TokenBucket::new(f64::from(tokens), 0.02), // barely refills
                    )
                })
                .collect();
        // Scenario throttled last-hop routers: one bucket per router /64.
        // ScenarioConfig::validate guarantees positive bucket parameters
        // whenever this list is non-empty.
        let sc = &model.config.scenario;
        for p in &model.scenario.throttled {
            icmp_buckets.push((
                *p,
                TokenBucket::new(sc.throttle_capacity, sc.throttle_refill_per_sec),
            ));
        }
        let syn_proxies = model
            .population
            .special
            .syn_proxy
            .iter()
            .map(|p| {
                (
                    *p,
                    SynProxy::new(Duration::from_secs(20), 12, Duration::from_secs(120)),
                )
            })
            .collect();
        let scenario_hosts = if model.scenario.enabled() {
            Arc::new(model.scenario.day_hosts(day))
        } else {
            Arc::default()
        };
        DayState {
            day,
            icmp_buckets,
            syn_proxies,
            scenario_hosts,
        }
    }

    /// An empty placeholder used while the real state is lifted out of
    /// the model for a split borrow (see `Network for InternetModel`).
    pub(crate) fn detached() -> Self {
        DayState {
            day: 0,
            icmp_buckets: Vec::new(),
            syn_proxies: Vec::new(),
            scenario_hosts: Arc::default(),
        }
    }
}

/// Which responder answers a destination address.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Responder {
    Alias {
        machine: MachineId,
        protos: ProtoSet,
    },
    Host {
        machine: MachineId,
        protos: ProtoSet,
        kind: HostKind,
    },
    Nobody,
}

impl InternetModel {
    /// Absolute nanoseconds for timestamp counters: day offset + intra-day
    /// virtual time.
    fn abs_ns(&self, day: u16, now: Time) -> u64 {
        u64::from(day) * churn::DAY_SECS * 1_000_000_000 + now.0
    }

    /// Path latency to a destination: keyed per /32, 8–120 ms round trip,
    /// plus per-packet jitter.
    fn rtt(&self, dst: Ipv6Addr, key: u64) -> Duration {
        let net = addr_to_u128(dst) >> 96;
        let base_ms = 8 + splitmix64(net as u64 ^ self.config.seed) % 112;
        let jitter_us = splitmix64(key) % 8_000;
        Duration::from_micros(base_ms * 1000 + jitter_us)
    }

    /// Forward+reverse loss decision for a (dst, protocol, day) key. The
    /// key deliberately ignores retransmission attempts: a same-day retry
    /// of the same probe meets the same fate, which is why the paper
    /// merges across *protocols* and *days* instead (§5.2).
    fn lost(&self, day: u16, dst: Ipv6Addr, proto_tag: u8, extra: u64) -> bool {
        let mut p = self.config.base_loss;
        if self.lossy_trie.longest_match(dst).is_some() {
            p = self.config.lossy_prefix_loss;
        }
        let key = splitmix64(
            (addr_to_u128(dst) as u64)
                ^ (addr_to_u128(dst) >> 64) as u64
                ^ (u64::from(proto_tag) << 56)
                ^ (u64::from(day) << 40)
                ^ extra,
        );
        expanse_netsim::KeyedLoss::new(self.config.seed ^ 0x10c5, p).drops(key)
    }

    /// Resolve who answers `dst` at probe-day granularity.
    fn resolve(&self, ds: &DayState, dst: Ipv6Addr) -> Responder {
        if let Some((_, region)) = self.population.aliases.resolve(dst) {
            return Responder::Alias {
                machine: region.machine,
                protos: region.protos,
            };
        }
        if let Some(h) = self.population.hosts.get(&addr_to_u128(dst)) {
            if h.online(ds.day) {
                return Responder::Host {
                    machine: h.machine,
                    protos: h.protos,
                    kind: h.kind,
                };
            }
        }
        // Scenario layer: the day's rotation-epoch hosts and temporary
        // privacy addresses (empty table when the scenario is disabled).
        if let Some((machine, protos, kind)) = ds.scenario_hosts.get(&addr_to_u128(dst)) {
            return Responder::Host {
                machine: *machine,
                protos: *protos,
                kind: *kind,
            };
        }
        Responder::Nobody
    }

    /// Does `protos` serve `proto` *today* (QUIC flapping applied)?
    fn serves_today(&self, day: u16, dst: Ipv6Addr, protos: ProtoSet, proto: Protocol) -> bool {
        if !protos.contains(proto) {
            return false;
        }
        if proto == Protocol::Udp443 {
            // QUIC-flaky prefixes: service comes and goes by day (§6.3).
            let net48 = addr_to_u128(dst) >> 80;
            if splitmix64(net48 as u64 ^ self.config.seed ^ 0xf1a9) % 100 < 35 {
                return churn::quic_up(
                    net48 as u64 ^ self.config.seed,
                    day,
                    self.config.quic_flap_up_rate,
                );
            }
        }
        true
    }

    /// Sub-day gate for client hosts (privacy-extension uptime sessions).
    fn client_gate(&self, day: u16, dst: Ipv6Addr, kind: HostKind, now: Time) -> bool {
        if kind != HostKind::Client {
            return true;
        }
        let salt = splitmix64(addr_to_u128(dst) as u64 ^ self.config.seed);
        churn::client_online(salt, day, now.0 / 1_000_000_000)
    }

    fn reply(
        &self,
        now: Time,
        probe_dst: Ipv6Addr,
        reply_src: Ipv6Addr,
        reply_dst: Ipv6Addr,
        hop_limit: u8,
        body: Transport,
    ) -> Delivery {
        let key = splitmix64(addr_to_u128(probe_dst) as u64 ^ now.0);
        let at = now + self.rtt(probe_dst, key);
        let datagram = match body {
            Transport::Icmpv6(m) => Datagram::icmpv6(reply_src, reply_dst, hop_limit, m),
            Transport::Tcp(s) => Datagram::tcp(reply_src, reply_dst, hop_limit, &s),
            Transport::Udp(u) => Datagram::udp(reply_src, reply_dst, hop_limit, &u),
            Transport::Other(nh, payload) => {
                Datagram::new(reply_src, reply_dst, nh, hop_limit, payload)
            }
        };
        Delivery::new(at, datagram.emit())
    }

    /// The hop limit a reply arrives with: machine initial TTL minus the
    /// return path length.
    fn observed_ttl(&self, dst: Ipv6Addr, ittl: u8) -> u8 {
        let cat = self
            .bgp
            .origin(dst)
            .and_then(|asn| self.as_category(asn))
            .unwrap_or(crate::ids::AsCategory::Enterprise);
        let plen = self.paths.path_len(dst, cat);
        ittl.saturating_sub(plen)
    }

    fn handle_icmp(
        &self,
        ds: &mut DayState,
        now: Time,
        hdr: &expanse_packet::Ipv6Header,
        ident: u16,
        seq: u16,
        payload: Vec<u8>,
    ) -> Vec<Delivery> {
        let dst = hdr.dst;
        // ICMP rate limiting (§5.1 case 4).
        for (p, bucket) in &mut ds.icmp_buckets {
            if p.contains(dst) && !bucket.try_consume(now) {
                return Vec::new();
            }
        }
        let responder = self.resolve(ds, dst);
        let (machine, protos, kind) = match responder {
            Responder::Alias { machine, protos } => (machine, protos, None),
            Responder::Host {
                machine,
                protos,
                kind,
            } => (machine, protos, Some(kind)),
            Responder::Nobody => return Vec::new(),
        };
        if !self.serves_today(ds.day, dst, protos, Protocol::Icmp) {
            return Vec::new();
        }
        if let Some(k) = kind {
            if !self.client_gate(ds.day, dst, k, now) {
                return Vec::new();
            }
        }
        if self.lost(ds.day, dst, 0, u64::from(ident) << 16 | u64::from(seq)) {
            return Vec::new();
        }
        let m = &self.population.machines[machine.0 as usize];
        let flavor = splitmix64(addr_to_u128(dst) as u64 ^ now.0 ^ 0x1c1c);
        let ttl = self.observed_ttl(dst, m.reply_ittl(flavor));
        vec![self.reply(
            now,
            dst,
            dst,
            hdr.src,
            ttl,
            Transport::Icmpv6(Icmpv6Message::EchoReply {
                ident,
                seq,
                payload,
            }),
        )]
    }

    fn handle_tcp(
        &self,
        ds: &mut DayState,
        now: Time,
        hdr: &expanse_packet::Ipv6Header,
        seg: TcpSegment,
    ) -> Vec<Delivery> {
        if !seg.flags.contains(TcpFlags::SYN) || seg.flags.contains(TcpFlags::ACK) {
            // Only SYN probes are modelled; ACK/RST probes get nothing.
            return Vec::new();
        }
        let dst = hdr.dst;
        let proto = match seg.dst_port {
            80 => Protocol::Tcp80,
            443 => Protocol::Tcp443,
            _ => Protocol::Tcp80, // treated as generic TCP below
        };
        let tuple_key = splitmix64(
            addr_to_u128(hdr.src) as u64
                ^ (addr_to_u128(hdr.src) >> 64) as u64
                ^ addr_to_u128(dst) as u64
                ^ (addr_to_u128(dst) >> 64) as u64,
        );
        // SYN proxy (§5.1's /80 case): counts SYNs to the protected
        // prefix; when hot, answers everything.
        for (p, proxy) in &mut ds.syn_proxies {
            if p.contains(dst) {
                if proxy.on_syn(now) {
                    let m = &self.population.machines[0];
                    let reply = m.syn_ack(&seg, self.abs_ns(ds.day, now), tuple_key, 0);
                    let ttl = self.observed_ttl(dst, 64);
                    return vec![self.reply(now, dst, dst, hdr.src, ttl, Transport::Tcp(reply))];
                }
                return Vec::new();
            }
        }
        let responder = self.resolve(ds, dst);
        let (machine, protos, kind) = match responder {
            Responder::Alias { machine, protos } => (machine, protos, None),
            Responder::Host {
                machine,
                protos,
                kind,
            } => (machine, protos, Some(kind)),
            Responder::Nobody => return Vec::new(),
        };
        if self.lost(
            ds.day,
            dst,
            1 + (seg.dst_port % 7) as u8,
            u64::from(seg.seq),
        ) {
            return Vec::new();
        }
        let serves = matches!(seg.dst_port, 80 | 443)
            && self.serves_today(ds.day, dst, protos, proto)
            && kind.is_none_or(|k| self.client_gate(ds.day, dst, k, now));
        let m = &self.population.machines[machine.0 as usize];
        let flavor = splitmix64(addr_to_u128(dst) as u64 ^ now.0 ^ u64::from(seg.dst_port));
        if serves {
            let reply = m.syn_ack(&seg, self.abs_ns(ds.day, now), tuple_key, flavor);
            let ttl = self.observed_ttl(dst, m.reply_ittl(flavor));
            vec![self.reply(now, dst, dst, hdr.src, ttl, Transport::Tcp(reply))]
        } else if kind.is_some() {
            // Live host, closed port: RST-ACK.
            let rst = TcpSegment {
                src_port: seg.dst_port,
                dst_port: seg.src_port,
                seq: 0,
                ack: seg.seq.wrapping_add(1),
                flags: TcpFlags::RST_ACK,
                window: 0,
                urgent: 0,
                options: Vec::new(),
                payload: Vec::new(),
            };
            let ttl = self.observed_ttl(dst, m.reply_ittl(flavor));
            vec![self.reply(now, dst, dst, hdr.src, ttl, Transport::Tcp(rst))]
        } else {
            Vec::new()
        }
    }

    fn handle_udp(
        &self,
        ds: &DayState,
        now: Time,
        hdr: &expanse_packet::Ipv6Header,
        u: UdpDatagram,
    ) -> Vec<Delivery> {
        let dst = hdr.dst;
        let responder = self.resolve(ds, dst);
        let (machine, protos, kind) = match responder {
            Responder::Alias { machine, protos } => (machine, protos, None),
            Responder::Host {
                machine,
                protos,
                kind,
            } => (machine, protos, Some(kind)),
            Responder::Nobody => return Vec::new(),
        };
        if self.lost(
            ds.day,
            dst,
            3 + (u.dst_port % 5) as u8,
            u64::from(u.src_port),
        ) {
            return Vec::new();
        }
        if kind.is_some_and(|k| !self.client_gate(ds.day, dst, k, now)) {
            return Vec::new();
        }
        let m = &self.population.machines[machine.0 as usize];
        let flavor = splitmix64(addr_to_u128(dst) as u64 ^ 0xd4d4);
        let ttl = self.observed_ttl(dst, m.reply_ittl(flavor));
        match u.dst_port {
            53 if self.serves_today(ds.day, dst, protos, Protocol::Udp53) => {
                let Ok(resp) = dns::build_response(&u.payload, 0, 1) else {
                    return Vec::new();
                };
                let reply = UdpDatagram::new(53, u.src_port, resp);
                vec![self.reply(now, dst, dst, hdr.src, ttl, Transport::Udp(reply))]
            }
            443 if self.serves_today(ds.day, dst, protos, Protocol::Udp443) => {
                let Ok(init) = quic::QuicLongHeader::parse(&u.payload) else {
                    return Vec::new();
                };
                let vn = quic::QuicLongHeader::version_negotiation(
                    &init.scid,
                    &init.dcid,
                    &[1, 0x6b33_43cf],
                );
                let reply = UdpDatagram::new(443, u.src_port, vn);
                vec![self.reply(now, dst, dst, hdr.src, ttl, Transport::Udp(reply))]
            }
            _ if kind.is_some() => {
                // Live host, closed UDP port: ICMPv6 port unreachable.
                let mut invoking = hdr.emit().to_vec();
                invoking.extend_from_slice(&u.emit(hdr.src, hdr.dst));
                invoking.truncate(88);
                let msg = Icmpv6Message::DestUnreachable {
                    code: icmpv6::unreach_code::PORT_UNREACHABLE,
                    invoking,
                };
                vec![self.reply(now, dst, dst, hdr.src, ttl, Transport::Icmpv6(msg))]
            }
            _ => Vec::new(),
        }
    }

    /// Time-exceeded handling for traceroute (hop_limit shorter than the
    /// path).
    fn handle_hops(
        &self,
        ds: &DayState,
        now: Time,
        hdr: &expanse_packet::Ipv6Header,
        frame: &[u8],
    ) -> Option<Vec<Delivery>> {
        let dst = hdr.dst;
        let (dst_prefix, asn) = self.bgp.lookup(dst)?;
        let cat = self.as_category(asn)?;
        let plen = self.paths.path_len(dst, cat);
        if hdr.hop_limit >= plen {
            return None; // reaches the destination; caller continues
        }
        let hop = hdr.hop_limit.max(1);
        // Per-hop responsiveness: some routers never answer, and hop
        // replies are themselves lossy.
        let hop_key = splitmix64(
            (addr_to_u128(dst) >> 80) as u64 ^ u64::from(hop) ^ self.config.seed ^ 0x40b5,
        );
        if hop_key % 100 < 12 {
            return Some(Vec::new()); // silent router
        }
        if self.lost(ds.day, dst, 0x70 ^ hop, u64::from(hop)) {
            return Some(Vec::new());
        }
        let hop_addr = self.paths.hop_addr(dst, dst_prefix, cat, hop);
        let mut invoking = frame.to_vec();
        invoking.truncate(88); // header + leading payload bytes
        let msg = Icmpv6Message::TimeExceeded { code: 0, invoking };
        let ttl = 255u8.saturating_sub(hop);
        Some(vec![self.reply(
            now,
            dst,
            hop_addr,
            hdr.src,
            ttl,
            Transport::Icmpv6(msg),
        )])
    }
}

impl InternetModel {
    /// The full engine, against an explicit day state. This is the seam
    /// the parallel scan fan-out builds on: the model stays shared and
    /// immutable while every probe stream owns its day state.
    pub(crate) fn inject_with(&self, ds: &mut DayState, now: Time, frame: &[u8]) -> Vec<Delivery> {
        let Ok((hdr, transport)) = Datagram::parse_transport(frame) else {
            return Vec::new();
        };
        // Unrouted space: silence (border routers dropping martians).
        if self.bgp.lookup(hdr.dst).is_none() {
            return Vec::new();
        }
        // Hop-limited probes burn out in transit.
        if let Some(out) = self.handle_hops(ds, now, &hdr, frame) {
            return out;
        }
        match transport {
            Transport::Icmpv6(Icmpv6Message::EchoRequest {
                ident,
                seq,
                payload,
            }) => self.handle_icmp(ds, now, &hdr, ident, seq, payload),
            Transport::Tcp(seg) => self.handle_tcp(ds, now, &hdr, seg),
            Transport::Udp(u) => self.handle_udp(ds, now, &hdr, u),
            _ => Vec::new(),
        }
    }
}

impl Network for InternetModel {
    fn inject(&mut self, now: Time, frame: &[u8]) -> Vec<Delivery> {
        // Split-borrow dance: lift the day state out so the engine can
        // borrow the model immutably alongside it.
        let mut ds = std::mem::replace(&mut self.day_state, DayState::detached());
        let out = self.inject_with(&mut ds, now, frame);
        self.day_state = ds;
        out
    }
}

/// A scan-time view of an [`InternetModel`]: the shared immutable world
/// plus this probe stream's own middlebox state. Constructing one costs
/// a few small `Vec` clones, so parallel fan-outs can take one per job.
#[derive(Debug)]
pub struct ScanView<'a> {
    model: &'a InternetModel,
    day: DayState,
}

impl Network for ScanView<'_> {
    fn inject(&mut self, now: Time, frame: &[u8]) -> Vec<Delivery> {
        self.model.inject_with(&mut self.day, now, frame)
    }
}

impl expanse_netsim::SnapshotNetwork for InternetModel {
    type Snapshot<'a> = ScanView<'a>;

    fn snapshot(&self) -> ScanView<'_> {
        ScanView {
            model: self,
            day: self.day_state.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InternetModel, ModelConfig};
    use expanse_packet::Datagram;

    fn model() -> InternetModel {
        InternetModel::build(ModelConfig::tiny(11))
    }

    fn vantage() -> Ipv6Addr {
        "2001:db8:ffff::1".parse().unwrap()
    }

    fn echo(dst: Ipv6Addr, hop: u8) -> Vec<u8> {
        Datagram::icmpv6(
            vantage(),
            dst,
            hop,
            Icmpv6Message::EchoRequest {
                ident: 0x42,
                seq: 7,
                payload: vec![0xab; 8],
            },
        )
        .emit()
    }

    #[test]
    fn live_host_answers_echo() {
        let mut m = model();
        // Candidate live ICMP hosts (non-client, not aliased), in a
        // deterministic order. Individual hosts can sit behind lossy
        // paths, so try several candidates across several days.
        let mut keys: Vec<u128> = m
            .population
            .hosts
            .iter()
            .filter(|(k, h)| {
                h.protos.contains(Protocol::Icmp)
                    && h.online(0)
                    && h.kind != HostKind::Client
                    && m.population
                        .aliases
                        .resolve(expanse_addr::u128_to_addr(**k))
                        .is_none()
            })
            .map(|(k, _)| *k)
            .collect();
        keys.sort_unstable();
        let mut got = false;
        'outer: for key in keys.into_iter().take(8) {
            let addr = expanse_addr::u128_to_addr(key);
            for day in 0..5 {
                m.set_day(day);
                let out = m.inject(Time::from_millis(u64::from(day) * 10), &echo(addr, 64));
                if let Some(d) = out.first() {
                    let (h, t) = Datagram::parse_transport(&d.frame).unwrap();
                    assert_eq!(h.src, addr);
                    assert_eq!(h.dst, vantage());
                    match t {
                        Transport::Icmpv6(Icmpv6Message::EchoReply { ident, seq, .. }) => {
                            assert_eq!((ident, seq), (0x42, 7));
                        }
                        other => panic!("wrong reply {other:?}"),
                    }
                    assert!(d.at > Time::ZERO);
                    got = true;
                    break 'outer;
                }
            }
        }
        assert!(got, "a live host should answer within 5 days of probing");
    }

    #[test]
    fn unrouted_space_is_silent() {
        let mut m = model();
        let out = m.inject(Time::ZERO, &echo("3fff::1".parse().unwrap(), 64));
        assert!(out.is_empty());
    }

    #[test]
    fn aliased_region_answers_any_address() {
        let mut m = model();
        let p48 = m.population.special.cdn_hook_48s[0];
        let mut answered = 0;
        for i in 0..20u64 {
            let addr = expanse_addr::keyed_random_addr(p48, i);
            if !m.inject(Time::from_millis(i), &echo(addr, 64)).is_empty() {
                answered += 1;
            }
        }
        assert!(answered >= 17, "aliased /48 answered {answered}/20");
    }

    #[test]
    fn low_hop_limit_triggers_time_exceeded() {
        let mut m = model();
        let addr = m.population.sites[0].addrs[0];
        let mut te = 0;
        for hop in 1..=3u8 {
            let out = m.inject(Time::from_millis(u64::from(hop)), &echo(addr, hop));
            for d in out {
                let (h, t) = Datagram::parse_transport(&d.frame).unwrap();
                if let Transport::Icmpv6(Icmpv6Message::TimeExceeded { .. }) = t {
                    te += 1;
                    assert_ne!(h.src, addr, "TE must come from a router, not the target");
                }
            }
        }
        assert!(te >= 1, "expected at least one TimeExceeded");
    }

    #[test]
    fn ghost_addresses_silent() {
        let mut m = model();
        // Ghost = pool address that is not a host and not aliased.
        let ghost = m
            .population
            .sites
            .iter()
            .flat_map(|s| s.addrs.iter())
            .find(|a| {
                !m.population.hosts.contains_key(&addr_to_u128(**a))
                    && m.population.aliases.resolve(**a).is_none()
            })
            .copied()
            .expect("a ghost exists");
        for day in 0..3 {
            m.set_day(day);
            assert!(m.inject(Time::ZERO, &echo(ghost, 64)).is_empty());
        }
    }

    #[test]
    fn dns_host_answers_udp53() {
        let mut m = model();
        let addr = m
            .population
            .hosts
            .iter()
            .filter(|(k, h)| {
                h.protos.contains(Protocol::Udp53)
                    && h.online(0)
                    && m.population
                        .aliases
                        .resolve(expanse_addr::u128_to_addr(**k))
                        .is_none()
            })
            .map(|(k, _)| expanse_addr::u128_to_addr(*k))
            .next()
            .expect("dns host");
        let q = dns::DnsQuery::new(0x1234, "example.com", dns::qtype::AAAA).emit();
        let u = UdpDatagram::new(40000, 53, q);
        let frame = Datagram::udp(vantage(), addr, 64, &u).emit();
        let mut got = false;
        for day in 0..5 {
            m.set_day(day);
            let out = m.inject(Time::from_millis(1), &frame);
            if let Some(d) = out.first() {
                let (_, t) = Datagram::parse_transport(&d.frame).unwrap();
                match t {
                    Transport::Udp(r) => {
                        assert_eq!(r.src_port, 53);
                        assert_eq!(r.dst_port, 40000);
                        let h = dns::DnsHeader::parse(&r.payload).unwrap();
                        assert!(h.qr);
                        assert_eq!(h.id, 0x1234);
                    }
                    other => panic!("wrong reply {other:?}"),
                }
                got = true;
                break;
            }
        }
        assert!(got);
    }

    #[test]
    fn syn_probe_to_alias_gets_syn_ack_with_options() {
        let mut m = model();
        let p48 = m.population.special.cdn_hook_48s[0];
        let addr = expanse_addr::keyed_random_addr(p48, 9);
        let seg = TcpSegment::syn_with_options(54321, 80, 1000, 77);
        let frame = Datagram::tcp(vantage(), addr, 64, &seg).emit();
        let mut got = false;
        for day in 0..5 {
            m.set_day(day);
            if let Some(d) = m.inject(Time::from_millis(2), &frame).first() {
                let (_, t) = Datagram::parse_transport(&d.frame).unwrap();
                match t {
                    Transport::Tcp(r) => {
                        assert!(r.flags.contains(TcpFlags::SYN_ACK));
                        assert_eq!(r.ack, 1001);
                        assert!(!r.options.is_empty());
                    }
                    other => panic!("wrong reply {other:?}"),
                }
                got = true;
                break;
            }
        }
        assert!(got);
    }

    #[test]
    fn carved_branch_is_silent_other_branches_answer() {
        let mut m = model();
        let p116 = m.population.special.carve116;
        let carved = expanse_addr::keyed_random_addr(p116.subprefix(4, 0), 3);
        for day in 0..4 {
            m.set_day(day);
            assert!(
                m.inject(Time::ZERO, &echo(carved, 64)).is_empty(),
                "carved branch answered on day {day}"
            );
        }
        let mut answered = 0;
        for b in 1..16u128 {
            let a = expanse_addr::keyed_random_addr(p116.subprefix(4, b), 3);
            if !m
                .inject(Time::from_millis(b as u64), &echo(a, 64))
                .is_empty()
            {
                answered += 1;
            }
        }
        assert!(answered >= 12, "only {answered}/15 branches answered");
    }

    #[test]
    fn rate_limited_prefix_partially_answers() {
        let mut m = model();
        let parent = m.population.special.rate_limit_parent;
        // Fire 16 ICMP probes quickly: only ~4-10 tokens are available.
        let mut answered = 0;
        for i in 0..16u128 {
            let a = expanse_addr::keyed_random_addr(parent.subprefix(4, i % 16), i as u64);
            if !m
                .inject(Time::from_millis(i as u64), &echo(a, 64))
                .is_empty()
            {
                answered += 1;
            }
        }
        assert!(
            (2..=11).contains(&answered),
            "rate limiter should clip responses, got {answered}/16"
        );
    }

    #[test]
    fn scenario_rotation_hosts_answer_then_ghost() {
        let mut m = InternetModel::build(ModelConfig::adversarial(11));
        let rp = m.scenario.rotating[0].clone();
        let e0 = m.scenario.rotation_addrs(&rp, 0);
        // Day 0 (epoch 0): at least one rotation host answers echo.
        m.set_day(0);
        let answered = e0
            .iter()
            .enumerate()
            .filter(|(i, a)| {
                !m.inject(Time::from_millis(*i as u64 * 50), &echo(**a, 64))
                    .is_empty()
            })
            .count();
        assert!(answered >= 1, "epoch-0 rotation hosts silent on day 0");
        // A day inside epoch 1: every epoch-0 address is a ghost.
        let ghost_day = m.scenario.rotation_period;
        m.set_day(ghost_day);
        for (i, a) in e0.iter().enumerate() {
            assert!(
                m.inject(Time::from_millis(i as u64 * 50), &echo(*a, 64))
                    .is_empty(),
                "ghost {a} answered on day {ghost_day}"
            );
        }
    }

    #[test]
    fn scenario_privacy_addr_answers_today_only() {
        let mut m = InternetModel::build(ModelConfig::adversarial(11));
        // Loss is per-(addr, day), so scan several privacy hosts.
        let hosts: Vec<_> = m.scenario.privacy.iter().take(8).cloned().collect();
        m.set_day(2);
        let answered = hosts
            .iter()
            .enumerate()
            .filter(|(i, ph)| {
                let a = m.scenario.privacy_addr(ph, 2);
                !m.inject(Time::from_millis(*i as u64 * 50), &echo(a, 64))
                    .is_empty()
            })
            .count();
        assert!(answered >= 1, "no day-2 privacy address answered");
        // Yesterday's temporaries are gone on day 3...
        m.set_day(3);
        for (i, ph) in hosts.iter().enumerate() {
            let stale = m.scenario.privacy_addr(ph, 2);
            assert!(
                m.inject(Time::from_millis(i as u64 * 50), &echo(stale, 64))
                    .is_empty(),
                "stale privacy address {stale} answered"
            );
        }
        // ...while at least one stable EUI-64 address still serves.
        let stable_up = hosts
            .iter()
            .enumerate()
            .filter(|(i, ph)| {
                !m.inject(
                    Time::from_millis(400 + *i as u64 * 50),
                    &echo(ph.stable, 64),
                )
                .is_empty()
            })
            .count();
        assert!(stable_up >= 1, "no stable privacy-host address answered");
    }

    #[test]
    fn scenario_throttled_routers_clip_probe_bursts() {
        let mut m = InternetModel::build(ModelConfig::adversarial(11));
        m.set_day(1);
        let p64 = m.scenario.throttled[0];
        // 16 rapid probes against the 4 router addresses: the /64's
        // token bucket (capacity 6, trickle refill) must clip replies.
        let answered = (0..16u128)
            .filter(|i| {
                let a = p64.addr_at(1 + (i % 4));
                !m.inject(Time::from_millis(*i as u64), &echo(a, 64))
                    .is_empty()
            })
            .count();
        assert!(
            (1..=6).contains(&answered),
            "throttle should clip burst, got {answered}/16"
        );
    }

    #[test]
    fn scenario_fabric_answers_any_address() {
        let mut m = InternetModel::build(ModelConfig::adversarial(11));
        let f = m.scenario.fabrics[0];
        let answered = (0..20u64)
            .filter(|i| {
                let a = expanse_addr::keyed_random_addr(f, *i);
                !m.inject(Time::from_millis(*i), &echo(a, 64)).is_empty()
            })
            .count();
        assert!(answered >= 17, "alias fabric answered {answered}/20");
    }

    #[test]
    fn set_day_changes_rate_limit_budget() {
        let mut m = model();
        let parent = m.population.special.rate_limit_parent;
        let count_day = |m: &mut InternetModel, day: u16| {
            m.set_day(day);
            (0..16u128)
                .filter(|i| {
                    let a = expanse_addr::keyed_random_addr(parent.subprefix(4, i % 16), *i as u64);
                    !m.inject(Time::from_millis(*i as u64), &echo(a, 64))
                        .is_empty()
                })
                .count()
        };
        let counts: Vec<usize> = (0..6).map(|d| count_day(&mut m, d)).collect();
        // Not all days answer the same branches/counts.
        assert!(
            counts
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 1,
            "daily variation expected: {counts:?}"
        );
    }
}
