//! The seven hitlist sources of §3 (Table 2, Fig 1a).
//!
//! Each source samples addresses from the population with its own nature
//! (servers / routers / clients), AS concentration, and cumulative growth
//! curve. Samplers are materialized at build time as ordered reveal
//! lists; `addrs_on_day(d)` returns the cumulative prefix of the list.

use crate::ids::AsCategory;
use crate::population::Population;
use crate::InternetModel;
use expanse_addr::fanout::splitmix64;
use expanse_addr::Prefix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashSet;
use std::net::Ipv6Addr;

/// Source identifiers, in the paper's Table 2 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SourceId {
    /// Domainlists.
    DomainLists,
    /// Fdns.
    Fdns,
    /// Ct.
    Ct,
    /// Axfr.
    Axfr,
    /// Bitnodes.
    Bitnodes,
    /// Ripeatlas.
    RipeAtlas,
    /// Scamper.
    Scamper,
}

impl SourceId {
    /// All.
    pub const ALL: [SourceId; 7] = [
        SourceId::DomainLists,
        SourceId::Fdns,
        SourceId::Ct,
        SourceId::Axfr,
        SourceId::Bitnodes,
        SourceId::RipeAtlas,
        SourceId::Scamper,
    ];

    /// Display name (Table 2).
    pub fn name(self) -> &'static str {
        match self {
            SourceId::DomainLists => "DL",
            SourceId::Fdns => "FDNS",
            SourceId::Ct => "CT",
            SourceId::Axfr => "AXFR",
            SourceId::Bitnodes => "BIT",
            SourceId::RipeAtlas => "RA",
            SourceId::Scamper => "Scamper",
        }
    }

    /// "Nature" column of Table 2.
    pub fn nature(self) -> &'static str {
        match self {
            SourceId::DomainLists | SourceId::Fdns | SourceId::Ct => "Servers",
            SourceId::Axfr | SourceId::Bitnodes => "Mixed",
            SourceId::RipeAtlas | SourceId::Scamper => "Routers",
        }
    }
}

/// One materialized source.
#[derive(Debug, Clone)]
pub struct Source {
    /// Which source this is.
    pub id: SourceId,
    /// Reveal-ordered addresses.
    pub pool: Vec<Ipv6Addr>,
    /// Cumulative reveal fraction per day (len = runup_days + 1,
    /// monotone, ends at 1.0).
    pub growth: Vec<f64>,
}

impl Source {
    /// Addresses known by the end of `day` (0-based; capped at the end).
    pub fn addrs_on_day(&self, day: u32) -> &[Ipv6Addr] {
        let i = (day as usize + 1).min(self.growth.len() - 1);
        let n = (self.growth[i] * self.pool.len() as f64).round() as usize;
        &self.pool[..n.min(self.pool.len())]
    }

    /// The complete pool.
    pub fn all(&self) -> &[Ipv6Addr] {
        &self.pool
    }
}

/// Relative pool-size targets (≈ Table 2 at 1:100, normalized to the
/// population actually available).
fn volume_weight(id: SourceId) -> f64 {
    match id {
        SourceId::DomainLists => 98.0,
        SourceId::Fdns => 33.0,
        SourceId::Ct => 185.0,
        SourceId::Axfr => 7.0,
        SourceId::Bitnodes => 0.31,
        SourceId::RipeAtlas => 2.0,
        SourceId::Scamper => 260.0,
    }
}

/// Share of each source's pool drawn from aliased CDN space — this is
/// what makes the Top-AS column of Table 2 so concentrated for the
/// DNS-derived sources.
fn alias_share(id: SourceId) -> f64 {
    match id {
        SourceId::DomainLists => 0.88,
        SourceId::Fdns => 0.12,
        SourceId::Ct => 0.91,
        SourceId::Axfr => 0.55,
        SourceId::Bitnodes => 0.0,
        SourceId::RipeAtlas => 0.0,
        SourceId::Scamper => 0.02,
    }
}

/// Which population categories the non-aliased share samples, with
/// weights.
fn category_mix(id: SourceId) -> &'static [(AsCategory, f64)] {
    match id {
        SourceId::DomainLists | SourceId::Ct => &[
            (AsCategory::Hoster, 0.55),
            (AsCategory::Enterprise, 0.25),
            (AsCategory::Academic, 0.15),
            (AsCategory::Cdn, 0.05),
        ],
        SourceId::Fdns => &[
            (AsCategory::Hoster, 0.40),
            (AsCategory::Enterprise, 0.25),
            (AsCategory::IspEyeball, 0.15),
            (AsCategory::Academic, 0.15),
            (AsCategory::Transit, 0.05),
        ],
        SourceId::Axfr => &[
            (AsCategory::Hoster, 0.6),
            (AsCategory::Enterprise, 0.3),
            (AsCategory::Academic, 0.1),
        ],
        SourceId::Bitnodes => &[(AsCategory::IspEyeball, 0.75), (AsCategory::Hoster, 0.25)],
        SourceId::RipeAtlas => &[
            (AsCategory::Transit, 0.55),
            (AsCategory::IspEyeball, 0.20),
            (AsCategory::Academic, 0.15),
            (AsCategory::Hoster, 0.10),
        ],
        SourceId::Scamper => &[(AsCategory::IspEyeball, 0.90), (AsCategory::Transit, 0.10)],
    }
}

/// Cumulative growth control points `(day_fraction, reveal_fraction)`
/// per source, shaped after Fig 1a.
fn growth_curve(id: SourceId) -> &'static [(f64, f64)] {
    match id {
        // Early, fast: domain lists existed from the start.
        SourceId::DomainLists => &[(0.0, 0.15), (0.2, 0.55), (0.5, 0.8), (1.0, 1.0)],
        SourceId::Fdns => &[(0.0, 0.1), (0.4, 0.5), (1.0, 1.0)],
        // CT log ingestion lands as a step midway.
        SourceId::Ct => &[
            (0.0, 0.02),
            (0.4, 0.08),
            (0.45, 0.6),
            (0.8, 0.9),
            (1.0, 1.0),
        ],
        SourceId::Axfr => &[(0.0, 0.2), (1.0, 1.0)],
        SourceId::Bitnodes => &[(0.0, 0.3), (1.0, 1.0)],
        SourceId::RipeAtlas => &[(0.0, 0.4), (1.0, 1.0)],
        // Explosive late growth (the paper calls it "peculiar").
        SourceId::Scamper => &[
            (0.0, 0.0),
            (0.3, 0.05),
            (0.6, 0.25),
            (0.85, 0.7),
            (1.0, 1.0),
        ],
    }
}

/// Interpolate a growth curve into per-day cumulative fractions.
fn materialize_growth(points: &[(f64, f64)], days: u32) -> Vec<f64> {
    let mut out = Vec::with_capacity(days as usize + 1);
    for d in 0..=days {
        let x = f64::from(d) / f64::from(days);
        // Find surrounding control points.
        let mut y = points.last().expect("non-empty curve").1;
        for w in points.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if x >= x0 && x <= x1 {
                let t = if x1 > x0 { (x - x0) / (x1 - x0) } else { 1.0 };
                y = y0 + t * (y1 - y0);
                break;
            }
        }
        out.push(y.clamp(0.0, 1.0));
    }
    out
}

/// Build all seven sources from the population.
pub fn build_sources(model: &InternetModel) -> Vec<Source> {
    let pop = &model.population;
    let seed = model.config.seed;
    let days = model.config.runup_days;

    // Pre-index pool addresses by category.
    let mut by_cat: std::collections::HashMap<AsCategory, Vec<Ipv6Addr>> =
        std::collections::HashMap::new();
    for site in &pop.sites {
        by_cat
            .entry(site.category)
            .or_default()
            .extend(site.addrs.iter().copied());
    }
    // CPE addresses for Scamper: registered CpeRouter hosts + path-model
    // ghosts are already part of hosts; collect them.
    let cpe: Vec<Ipv6Addr> = {
        // hosts is a HashMap: sort for run-to-run determinism before the
        // keyed shuffle below.
        let mut v: Vec<u128> = pop
            .hosts
            .iter()
            .filter(|(_, h)| h.kind == crate::host::HostKind::CpeRouter)
            .map(|(k, _)| *k)
            .collect();
        v.sort_unstable();
        v.into_iter().map(expanse_addr::u128_to_addr).collect()
    };

    let mut out = Vec::new();
    for id in SourceId::ALL {
        let mut rng = StdRng::seed_from_u64(seed ^ splitmix64(id as u64 ^ 0x50cc));
        let total_weight: f64 = SourceId::ALL.iter().map(|s| volume_weight(*s)).sum();
        // Scale pool sizes to the population: aim to use most of the
        // alias pool + site pools across all sources.
        let budget_all = (pop.alias_pool.len() + pop.pool_size()) as f64 * 1.05;
        let mut want = ((volume_weight(id) / total_weight) * budget_all) as usize;
        if id == SourceId::Bitnodes {
            want = want.max(200);
        }
        if id == SourceId::RipeAtlas {
            want = want.max(800);
        }

        let n_alias = ((want as f64) * alias_share(id)) as usize;
        let n_rest = want - n_alias;
        let mut pool: Vec<Ipv6Addr> = Vec::with_capacity(want);
        let mut seen: HashSet<u128> = HashSet::with_capacity(want);

        // Aliased share: deterministic slice walk with per-source offset.
        if n_alias > 0 && !pop.alias_pool.is_empty() {
            let start = splitmix64(seed ^ id as u64) as usize % pop.alias_pool.len();
            for i in 0..n_alias {
                let a = pop.alias_pool[(start + i * 7) % pop.alias_pool.len()];
                if seen.insert(expanse_addr::addr_to_u128(a)) {
                    pool.push(a);
                }
            }
        }

        // FDNS additionally indexes server farms completely: hosting
        // fleets have forward DNS for every box, so farm /64s appear in
        // the hitlist with enough members for the §5.4 validation.
        if id == SourceId::Fdns {
            for site in &pop.sites {
                if site.category == AsCategory::Hoster && site.site.len() == 64 {
                    for a in &site.addrs {
                        if seen.insert(expanse_addr::addr_to_u128(*a)) {
                            pool.push(*a);
                        }
                    }
                }
            }
        }

        // Category share.
        if id == SourceId::Scamper {
            // Scamper draws the CPE router population.
            let mut cpe_shuffled = cpe.clone();
            cpe_shuffled.shuffle(&mut rng);
            for a in cpe_shuffled.into_iter().take(n_rest) {
                if seen.insert(expanse_addr::addr_to_u128(a)) {
                    pool.push(a);
                }
            }
            // Plus backbone router addresses seen in traceroutes.
            for i in 0..(n_rest / 20).max(10) {
                let hop_net: Prefix = Prefix::from_bits(0x2000_0001u128 << 96, 32);
                let a = expanse_addr::keyed_random_addr(
                    hop_net.subprefix(32, (splitmix64(i as u64) % 4096) as u128),
                    seed ^ i as u64,
                );
                if seen.insert(expanse_addr::addr_to_u128(a)) {
                    pool.push(a);
                }
            }
        } else {
            let mix = category_mix(id);
            for (cat, w) in mix {
                let Some(cands) = by_cat.get(cat) else {
                    continue;
                };
                if cands.is_empty() {
                    continue;
                }
                let n = ((n_rest as f64) * w) as usize;
                let start = splitmix64(seed ^ id as u64 ^ *cat as u64) as usize % cands.len();
                // Stride-walk the category pool: deterministic, spreads
                // across sites, allows overlap between sources (the "new
                // IPs" column of Table 2 measures exactly this overlap).
                let stride = 1 + splitmix64(id as u64 ^ 0x57) as usize % 5;
                for i in 0..n.min(cands.len() * 2) {
                    let a = cands[(start + i * stride) % cands.len()];
                    if seen.insert(expanse_addr::addr_to_u128(a)) {
                        pool.push(a);
                    }
                    if pool.len() >= want {
                        break;
                    }
                }
            }
        }

        // Reveal order: shuffled so growth curves expose a random mix.
        pool.shuffle(&mut rng);
        let growth = materialize_growth(growth_curve(id), days);
        out.push(Source { id, pool, growth });
    }
    out
}

/// A rough upper bound on how many addresses `build_sources` will emit —
/// used by capacity planners in the bench harness.
pub fn expected_total(pop: &Population) -> usize {
    pop.alias_pool.len() + pop.pool_size()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InternetModel, ModelConfig};

    fn model() -> InternetModel {
        InternetModel::build(ModelConfig::tiny(5))
    }

    #[test]
    fn seven_sources_built() {
        let m = model();
        let sources = build_sources(&m);
        assert_eq!(sources.len(), 7);
        for s in &sources {
            assert!(!s.pool.is_empty(), "{:?} empty", s.id);
            assert_eq!(s.growth.len() as u32, m.config.runup_days + 1);
            // Growth is monotone and ends at 1.
            assert!(s.growth.windows(2).all(|w| w[0] <= w[1] + 1e-12));
            assert!((s.growth.last().unwrap() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn growth_reveals_monotonically() {
        let m = model();
        let sources = build_sources(&m);
        for s in &sources {
            let d0 = s.addrs_on_day(0).len();
            let dmid = s.addrs_on_day(m.config.runup_days / 2).len();
            let dend = s.addrs_on_day(m.config.runup_days).len();
            assert!(d0 <= dmid && dmid <= dend, "{:?}", s.id);
            assert_eq!(dend, s.pool.len(), "{:?} must fully reveal", s.id);
        }
    }

    #[test]
    fn scamper_grows_late_dl_grows_early() {
        let m = model();
        let sources = build_sources(&m);
        let frac = |id: SourceId, day: u32| {
            let s = sources.iter().find(|s| s.id == id).unwrap();
            s.addrs_on_day(day).len() as f64 / s.pool.len() as f64
        };
        let mid = m.config.runup_days / 2;
        assert!(
            frac(SourceId::DomainLists, mid) > 0.6,
            "DL should be mostly revealed by midpoint"
        );
        assert!(
            frac(SourceId::Scamper, mid) < 0.35,
            "Scamper should still be small at midpoint"
        );
    }

    #[test]
    fn dl_and_ct_are_alias_heavy() {
        let m = model();
        let sources = build_sources(&m);
        for id in [SourceId::DomainLists, SourceId::Ct] {
            let s = sources.iter().find(|s| s.id == id).unwrap();
            let aliased = s
                .pool
                .iter()
                .filter(|a| m.population.aliases.resolve(**a).is_some())
                .count();
            let share = aliased as f64 / s.pool.len() as f64;
            assert!(share > 0.7, "{id:?} alias share {share}");
        }
        let ra = sources
            .iter()
            .find(|s| s.id == SourceId::RipeAtlas)
            .unwrap();
        let ra_aliased = ra
            .pool
            .iter()
            .filter(|a| m.population.aliases.resolve(**a).is_some())
            .count();
        assert_eq!(ra_aliased, 0, "RIPE Atlas must not sample aliased space");
    }

    #[test]
    fn scamper_is_mostly_slaac_cpe() {
        let m = model();
        let sources = build_sources(&m);
        let s = sources.iter().find(|s| s.id == SourceId::Scamper).unwrap();
        let slaac = s
            .pool
            .iter()
            .filter(|a| expanse_addr::is_eui64(**a))
            .count();
        let share = slaac as f64 / s.pool.len() as f64;
        // Paper: 90.7 % of scamper addresses carry ff:fe.
        assert!(share > 0.7, "SLAAC share {share}");
    }

    #[test]
    fn deterministic() {
        let m = model();
        let a = build_sources(&m);
        let b = build_sources(&m);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pool, y.pool);
        }
    }
}
