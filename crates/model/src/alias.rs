//! Aliased regions: address ranges fully bound to one machine.
//!
//! §5 of the paper: *"a single machine responding to all addresses in a
//! possibly large prefix"* (IP_FREEBIND-style full-prefix binds, as CDNs
//! deploy). The model keeps a trie of aliased regions; the engine answers
//! any address inside one from the region's machine, except in *carve-out*
//! branches (§5.1's /116 case, where the `0x0` branch is handled by a
//! different system and stays silent).

use crate::fingerprint::MachineId;
use expanse_addr::{nybbles::nybble, Prefix};
use expanse_packet::ProtoSet;
use expanse_trie::PrefixTrie;
use std::net::Ipv6Addr;

/// One aliased region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AliasRegion {
    /// The machine every contained address terminates at.
    pub machine: MachineId,
    /// Protocols the machine answers.
    pub protos: ProtoSet,
    /// If set, the 4-bit branch at `prefix.len()` with this value is NOT
    /// aliased (carved out) and stays silent.
    pub carve_branch: Option<u8>,
}

/// The alias table: regions keyed by prefix, longest-prefix matched.
#[derive(Debug, Clone, Default)]
pub struct AliasTable {
    trie: PrefixTrie<AliasRegion>,
}

impl AliasTable {
    /// Create a new instance.
    pub fn new() -> Self {
        AliasTable {
            trie: PrefixTrie::new(),
        }
    }

    /// Register a region.
    pub fn insert(&mut self, prefix: Prefix, region: AliasRegion) {
        self.trie.insert(prefix, region);
    }

    /// The aliased region responsible for `addr`, if any. Honours
    /// carve-outs: an address in a region's carved branch resolves to
    /// `None` unless a more specific region covers it.
    pub fn resolve(&self, addr: Ipv6Addr) -> Option<(Prefix, AliasRegion)> {
        // Walk from most specific to least specific covering region.
        let mut covering: Vec<(Prefix, AliasRegion)> =
            self.trie.matches(addr).map(|(p, r)| (p, *r)).collect();
        covering.reverse();
        for (p, r) in covering {
            if let Some(branch) = r.carve_branch {
                if p.len() <= 124 {
                    let b = nybble(addr, usize::from(p.len()) / 4);
                    if b == branch && p.len() % 4 == 0 {
                        continue; // carved out: not served by this region
                    }
                }
            }
            return Some((p, r));
        }
        None
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// All region prefixes.
    pub fn prefixes(&self) -> Vec<Prefix> {
        self.trie.prefixes()
    }

    /// Iterate regions.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &AliasRegion)> + '_ {
        self.trie.iter()
    }

    /// Ground truth check used by experiment validation: is `p` (exactly)
    /// a registered aliased region?
    pub fn contains_region(&self, p: Prefix) -> bool {
        self.trie.get(p).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expanse_packet::Protocol;

    fn region(m: u32) -> AliasRegion {
        AliasRegion {
            machine: MachineId(m),
            protos: ProtoSet::only(Protocol::Icmp).with(Protocol::Tcp80),
            carve_branch: None,
        }
    }

    #[test]
    fn resolve_hits_inside_region() {
        let mut t = AliasTable::new();
        t.insert("2001:db8:47::/48".parse().unwrap(), region(1));
        let (p, r) = t
            .resolve("2001:db8:47:abcd::1234".parse().unwrap())
            .unwrap();
        assert_eq!(p.len(), 48);
        assert_eq!(r.machine, MachineId(1));
        assert!(t.resolve("2001:db8:48::1".parse().unwrap()).is_none());
    }

    #[test]
    fn more_specific_region_wins() {
        let mut t = AliasTable::new();
        t.insert("2001:db8::/32".parse().unwrap(), region(1));
        t.insert("2001:db8:1::/48".parse().unwrap(), region(2));
        let (_, r) = t.resolve("2001:db8:1::9".parse().unwrap()).unwrap();
        assert_eq!(r.machine, MachineId(2));
        let (_, r) = t.resolve("2001:db8:2::9".parse().unwrap()).unwrap();
        assert_eq!(r.machine, MachineId(1));
    }

    #[test]
    fn carve_branch_is_silent() {
        let mut t = AliasTable::new();
        let p: Prefix = "2001:db8:0:1::/116".parse().unwrap();
        t.insert(
            p,
            AliasRegion {
                carve_branch: Some(0),
                ..region(3)
            },
        );
        // Branch 0x0 of the /116 (nybble index 29) is carved out.
        assert!(t.resolve("2001:db8:0:1::0042".parse().unwrap()).is_none());
        // Branch 0x5 answers.
        assert!(t.resolve("2001:db8:0:1::0542".parse().unwrap()).is_some());
    }

    #[test]
    fn carve_can_be_overridden_by_more_specific() {
        let mut t = AliasTable::new();
        let p64: Prefix = "2001:db8:1:2::/64".parse().unwrap();
        t.insert(
            p64,
            AliasRegion {
                carve_branch: Some(0xf),
                ..region(1)
            },
        );
        // A more specific region inside the carved branch still serves.
        t.insert("2001:db8:1:2:f000::/68".parse().unwrap(), region(9));
        let (_, r) = t.resolve("2001:db8:1:2:f000::1".parse().unwrap()).unwrap();
        assert_eq!(r.machine, MachineId(9));
        // Elsewhere in the carve (no specific region) stays silent — the
        // /68 above covers the whole branch though, so pick another test
        // point outside p64 entirely.
        assert!(t.resolve("2001:db8:1:3::1".parse().unwrap()).is_none());
    }

    #[test]
    fn ground_truth_membership() {
        let mut t = AliasTable::new();
        let p: Prefix = "2001:db8:47::/48".parse().unwrap();
        t.insert(p, region(1));
        assert!(t.contains_region(p));
        assert!(!t.contains_region("2001:db8:47::/52".parse().unwrap()));
        assert_eq!(t.len(), 1);
    }
}
