//! Adversarial periphery scenarios (ROADMAP "Scenario diversity").
//!
//! The base population is friendly infrastructure; the hitlists the
//! paper unbiases are dominated by hostile periphery ("Revisiting and
//! Expanding the IPv6 Periphery"; residential-broadband reconnaissance).
//! This module layers four such behaviours over a built [`Population`]:
//!
//! 1. **Prefix rotation** — delegated /56s whose hosts renumber every K
//!    days. Renumber events are replayed through the simulator's
//!    [`EventQueue`]; addresses from earlier epochs become *rotation
//!    ghosts* that never answer again.
//! 2. **RFC 4941 privacy churn** — hosts whose temporary IID regenerates
//!    daily while a stable EUI-64 service address persists.
//! 3. **Throttled last-hop routers** — /64s whose ICMPv6 responses sit
//!    behind a per-router token bucket (wired into the engine's day
//!    state; see also `expanse_netsim::ThrottledNetwork` for the
//!    composable wrapper form).
//! 4. **Periphery alias fabrics** — whole /64s answering on every probed
//!    address, registered as genuine [`crate::alias::AliasTable`] regions so
//!    [`crate::InternetModel::truth_aliased`] stays the single source of
//!    alias ground truth.
//!
//! Everything derives from `splitmix64` keyed hashing of the model seed,
//! so scenario state is deterministic and costs nothing when disabled:
//! an all-zero [`ScenarioConfig`] produces an empty [`ScenarioState`] and
//! a byte-identical model.
//!
//! **Ground-truth export contract** (what `bench-scenarios` scores
//! against): [`ScenarioState::feed`] is what sources would learn on a
//! day, [`ScenarioState::ghosts`] is the subset of previously-fed
//! addresses that can no longer answer, and
//! [`crate::InternetModel::truth_responsive`] says whether the model
//! would answer a given address on a given day (ignoring loss and
//! throttling).

use crate::alias::AliasRegion;
use crate::churn;
use crate::config::ScenarioConfig;
use crate::fingerprint::{Machine, MachineId};
use crate::host::{HostKind, HostProfile, StabilityClass};
use crate::ids::AsCategory;
use crate::population::Population;
use expanse_addr::fanout::splitmix64;
use expanse_addr::{addr_to_u128, keyed_random_addr, u128_to_addr, Prefix};
use expanse_netsim::{EventQueue, Time};
use expanse_packet::{ProtoSet, Protocol};
use std::collections::BTreeMap;
use std::net::Ipv6Addr;

/// One delegated /56 that renumbers all its hosts every rotation period.
#[derive(Debug, Clone)]
pub struct RotatingPrefix {
    /// The delegated prefix.
    pub prefix: Prefix,
    /// Per-prefix derivation salt.
    pub salt: u64,
    /// Hosts alive inside the prefix during each epoch.
    pub hosts: usize,
    /// Machine personality shared by the CPE hosts.
    pub machine: MachineId,
}

/// One RFC 4941 host: a stable EUI-64 service address that persists plus
/// a temporary privacy address that regenerates daily.
#[derive(Debug, Clone)]
pub struct PrivacyHost {
    /// The host's /64.
    pub prefix: Prefix,
    /// Per-host derivation salt.
    pub salt: u64,
    /// The stable EUI-64 address (registered as a permanent live host).
    pub stable: Ipv6Addr,
    /// Machine personality (shared by the stable and temporary address).
    pub machine: MachineId,
}

/// Entry of the per-day scenario responder table.
pub(crate) type ScenarioResponder = (MachineId, ProtoSet, HostKind);

/// Scenario ground truth and derivation state, built once per model.
#[derive(Debug, Clone, Default)]
pub struct ScenarioState {
    /// Rotating delegated prefixes.
    pub rotating: Vec<RotatingPrefix>,
    /// Privacy-extension hosts.
    pub privacy: Vec<PrivacyHost>,
    /// Periphery alias fabric /64s (also present in the alias table).
    pub fabrics: Vec<Prefix>,
    /// Throttled last-hop router /64s.
    pub throttled: Vec<Prefix>,
    /// Days between rotation epochs (0 = never).
    pub rotation_period: u16,
}

/// Deterministic subprefix pick: `extra` more bits under `site`, index
/// hashed from `(seed, tag, i)` so scenario prefixes spread across the
/// site instead of clustering at low indexes.
fn carve(site: Prefix, target_len: u8, seed: u64, tag: u64, i: u64) -> Prefix {
    let extra = target_len - site.len();
    let span = 1u128 << u32::from(extra).min(63);
    let idx = u128::from(splitmix64(seed ^ tag ^ (i << 8))) % span;
    site.subprefix(extra, idx)
}

/// Build the scenario layer over a finished population. Appends fabric
/// machines and permanent scenario hosts to the population; all other
/// state lives in the returned [`ScenarioState`].
pub(crate) fn build(cfg: &ScenarioConfig, seed: u64, population: &mut Population) -> ScenarioState {
    let mut state = ScenarioState {
        rotation_period: cfg.rotation_period_days,
        ..ScenarioState::default()
    };
    if !cfg.enabled() {
        return state;
    }
    // Periphery behaviours live in eyeball space; sites are in build
    // order, so this pick is deterministic. Only sites short enough to
    // carve a /56 or /64 out of qualify.
    let eyeball: Vec<(Prefix, crate::ids::Asn)> = population
        .sites
        .iter()
        .filter(|s| s.category == AsCategory::IspEyeball && s.site.len() <= 48)
        .map(|s| (s.site, s.asn))
        .collect();
    assert!(
        !eyeball.is_empty(),
        "scenario layer needs an eyeball site of /48 or shorter"
    );
    let new_machine = |pop: &mut Population, salt_tag: u64, i: u64| {
        let id = MachineId(pop.machines.len() as u32);
        pop.machines
            .push(Machine::linux_like(splitmix64(seed ^ salt_tag ^ i)));
        id
    };

    // (1) Rotating delegated /56s.
    for i in 0..cfg.rotating_56s as u64 {
        let (site, _) = eyeball[i as usize % eyeball.len()];
        let machine = new_machine(population, 0x0307_7c9e, i);
        state.rotating.push(RotatingPrefix {
            prefix: carve(site, 56, seed, 0x6070_7a7e, i),
            salt: splitmix64(seed ^ 0x5a17 ^ (i << 8)),
            hosts: cfg.rotation_hosts,
            machine,
        });
    }

    // (2) RFC 4941 privacy hosts: register the stable EUI-64 address as
    // a permanent live host; the daily temporary address goes through
    // the per-day responder table.
    for i in 0..cfg.privacy_hosts as u64 {
        let (site, asn) = eyeball[(i as usize + 1) % eyeball.len()];
        let prefix = carve(site, 64, seed, 0x9e1f_4941, i);
        let salt = splitmix64(seed ^ 0x4941 ^ (i << 8));
        let h = splitmix64(salt ^ 0xe064);
        // EUI-64 layout: 24-bit OUI | ff:fe | 24-bit NIC.
        let iid = ((h >> 40) << 40) | 0x0000_00ff_fe00_0000 | (h & 0x00ff_ffff);
        let stable = u128_to_addr(prefix.bits() | u128::from(iid));
        let machine = new_machine(population, 0x0057_ab1e, i);
        population.hosts.insert(
            addr_to_u128(stable),
            HostProfile {
                asn,
                kind: HostKind::WebServer,
                protos: ProtoSet::only(Protocol::Icmp)
                    .with(Protocol::Tcp80)
                    .with(Protocol::Tcp443),
                machine,
                stability: StabilityClass::Permanent,
                spawn_day: 0,
                death_day: u16::MAX,
            },
        );
        state.privacy.push(PrivacyHost {
            prefix,
            salt,
            stable,
            machine,
        });
    }

    // (4) Periphery alias fabrics: whole /64s answering everything.
    for i in 0..cfg.fabric_64s as u64 {
        let (site, _) = eyeball[(i as usize + 2) % eyeball.len()];
        let p64 = carve(site, 64, seed, 0xfab2_1c64, i);
        let machine = new_machine(population, 0xfab_12c, i);
        population.aliases.insert(
            p64,
            AliasRegion {
                machine,
                protos: ProtoSet::only(Protocol::Icmp).with(Protocol::Tcp80),
                carve_branch: None,
            },
        );
        state.fabrics.push(p64);
    }

    // (3) Throttled last-hop routers: a handful of permanent ICMP-only
    // router addresses per /64; the per-router token bucket is attached
    // by the engine's day state.
    for i in 0..cfg.throttled_routers as u64 {
        let (site, asn) = eyeball[(i as usize + 3) % eyeball.len()];
        let p64 = carve(site, 64, seed, 0x7077_1e00, i);
        let machine = new_machine(population, 0x0070_077e, i);
        for k in 0..4u128 {
            population.hosts.insert(
                addr_to_u128(p64.addr_at(1 + k)),
                HostProfile {
                    asn,
                    kind: HostKind::CpeRouter,
                    protos: ProtoSet::only(Protocol::Icmp),
                    machine,
                    stability: StabilityClass::Permanent,
                    spawn_day: 0,
                    death_day: u16::MAX,
                },
            );
        }
        state.throttled.push(p64);
    }

    state
}

impl ScenarioState {
    /// Is any behaviour active?
    pub fn enabled(&self) -> bool {
        !self.rotating.is_empty()
            || !self.privacy.is_empty()
            || !self.fabrics.is_empty()
            || !self.throttled.is_empty()
    }

    /// Rotation epoch active on `day`, derived by replaying the renumber
    /// schedule through the simulator's [`EventQueue`] (renumber events
    /// fire at epoch boundaries; the latest event due by `day` wins).
    /// Agrees with [`churn::rotation_epoch`] by construction.
    pub fn rotation_epoch(&self, day: u16) -> u16 {
        if self.rotation_period == 0 {
            return 0;
        }
        let mut q = EventQueue::new();
        for k in 1..=day / self.rotation_period {
            q.push(
                Time::from_secs(u64::from(k) * u64::from(self.rotation_period) * churn::DAY_SECS),
                k,
            );
        }
        let now = Time::from_secs(u64::from(day) * churn::DAY_SECS);
        let mut epoch = 0;
        while let Some((_, k)) = q.pop_due(now) {
            epoch = k;
        }
        epoch
    }

    /// The addresses `rp` serves during `epoch`.
    pub fn rotation_addrs(&self, rp: &RotatingPrefix, epoch: u16) -> Vec<Ipv6Addr> {
        (0..rp.hosts as u64)
            .map(|j| {
                keyed_random_addr(
                    rp.prefix,
                    splitmix64(rp.salt ^ (u64::from(epoch) << 32) ^ j),
                )
            })
            .collect()
    }

    /// The temporary privacy address of `ph` on `day`.
    pub fn privacy_addr(&self, ph: &PrivacyHost, day: u16) -> Ipv6Addr {
        keyed_random_addr(
            ph.prefix,
            splitmix64(ph.salt ^ (u64::from(day) << 16) ^ 0x4941),
        )
    }

    /// The scenario responder table for `day`: rotation hosts of the
    /// current epoch plus the day's temporary privacy addresses. Rebuilt
    /// by the engine on every `set_day`.
    pub(crate) fn day_hosts(&self, day: u16) -> BTreeMap<u128, ScenarioResponder> {
        let mut out = BTreeMap::new();
        let epoch = self.rotation_epoch(day);
        for rp in &self.rotating {
            for a in self.rotation_addrs(rp, epoch) {
                out.insert(
                    addr_to_u128(a),
                    (
                        rp.machine,
                        ProtoSet::only(Protocol::Icmp),
                        HostKind::CpeRouter,
                    ),
                );
            }
        }
        for ph in &self.privacy {
            out.insert(
                addr_to_u128(self.privacy_addr(ph, day)),
                (
                    ph.machine,
                    ProtoSet::only(Protocol::Icmp).with(Protocol::Tcp80),
                    HostKind::WebServer,
                ),
            );
        }
        out
    }

    /// What hitlist sources would learn on `day`: the scenario addresses
    /// answering that day (current rotation epoch, temporary + stable
    /// privacy addresses, throttled router addresses) plus a small
    /// per-day sample out of each alias fabric — fabric space is
    /// infinite, so sources only ever see samples of it.
    pub fn feed(&self, day: u16) -> Vec<Ipv6Addr> {
        let epoch = self.rotation_epoch(day);
        let mut out: Vec<Ipv6Addr> = Vec::new();
        for rp in &self.rotating {
            out.extend(self.rotation_addrs(rp, epoch));
        }
        for ph in &self.privacy {
            out.push(ph.stable);
            out.push(self.privacy_addr(ph, day));
        }
        for p64 in &self.throttled {
            out.extend((0..4u128).map(|k| p64.addr_at(1 + k)));
        }
        for (i, f) in self.fabrics.iter().enumerate() {
            out.extend((0..4u64).map(|j| {
                keyed_random_addr(
                    *f,
                    splitmix64(i as u64 ^ (u64::from(day) << 24) ^ j ^ 0xfeed),
                )
            }));
        }
        out.sort();
        out.dedup();
        out
    }

    /// Ground truth: previously-feedable scenario addresses that can no
    /// longer answer on `day` — rotation addresses of earlier epochs and
    /// temporary privacy addresses of earlier days.
    pub fn ghosts(&self, day: u16) -> Vec<Ipv6Addr> {
        let epoch = self.rotation_epoch(day);
        let mut out: Vec<Ipv6Addr> = Vec::new();
        for rp in &self.rotating {
            for e in 0..epoch {
                out.extend(self.rotation_addrs(rp, e));
            }
        }
        for ph in &self.privacy {
            for d in 0..day {
                out.push(self.privacy_addr(ph, d));
            }
        }
        // An address can be re-derived by a later epoch/day; only count
        // it as a ghost if it is not also live today.
        let live = self.day_hosts(day);
        out.retain(|a| !live.contains_key(&addr_to_u128(*a)));
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InternetModel, ModelConfig};

    fn model() -> InternetModel {
        InternetModel::build(ModelConfig::adversarial(77))
    }

    #[test]
    fn disabled_scenario_is_empty() {
        let m = InternetModel::build(ModelConfig::tiny(77));
        assert!(!m.scenario.enabled());
        assert!(m.scenario.feed(0).is_empty());
        assert!(m.scenario.ghosts(5).is_empty());
    }

    #[test]
    fn adversarial_scenario_populates_every_behaviour() {
        let m = model();
        let s = &m.scenario;
        assert_eq!(s.rotating.len(), 3);
        assert_eq!(s.privacy.len(), 24);
        assert_eq!(s.fabrics.len(), 4);
        assert_eq!(s.throttled.len(), 3);
        for rp in &s.rotating {
            assert_eq!(rp.prefix.len(), 56);
        }
        for f in &s.fabrics {
            assert_eq!(f.len(), 64);
            // Fabrics are genuine alias regions: truth_aliased covers
            // arbitrary addresses inside.
            assert!(m.truth_aliased(keyed_random_addr(*f, 99)));
        }
    }

    #[test]
    fn event_queue_epoch_matches_pure_helper() {
        let m = model();
        for day in 0..40u16 {
            assert_eq!(
                m.scenario.rotation_epoch(day),
                churn::rotation_epoch(day, m.scenario.rotation_period),
                "day {day}"
            );
        }
    }

    #[test]
    fn rotation_renumbers_and_ghosts_accumulate() {
        let m = model();
        let s = &m.scenario;
        let rp = &s.rotating[0];
        let e0 = s.rotation_addrs(rp, 0);
        let e1 = s.rotation_addrs(rp, 1);
        assert_eq!(e0.len(), 12);
        assert!(e0.iter().all(|a| rp.prefix.contains(*a)));
        assert!(e0.iter().all(|a| !e1.contains(a)), "epochs must renumber");
        // Ghosts on a day in epoch 1 include all of epoch 0.
        let day = s.rotation_period; // first day of epoch 1
        let ghosts = s.ghosts(day);
        assert!(e0.iter().all(|a| ghosts.contains(a)));
        assert!(e1.iter().all(|a| !ghosts.contains(a)));
    }

    #[test]
    fn privacy_addrs_churn_daily_but_stable_persists() {
        let m = model();
        let s = &m.scenario;
        let ph = &s.privacy[0];
        let a0 = s.privacy_addr(ph, 0);
        let a1 = s.privacy_addr(ph, 1);
        assert_ne!(a0, a1, "temporary IID must regenerate daily");
        assert!(ph.prefix.contains(a0) && ph.prefix.contains(a1));
        // The stable address is EUI-64-shaped (ff:fe at IID bytes 3-4).
        let iid = addr_to_u128(ph.stable) as u64;
        assert_eq!((iid >> 24) & 0xffff, 0xfffe);
        // ... and registered as a permanent live host.
        let h = m.population.hosts.get(&addr_to_u128(ph.stable)).unwrap();
        assert_eq!(h.death_day, u16::MAX);
        // Both days' feeds carry the stable address.
        assert!(s.feed(0).contains(&ph.stable));
        assert!(s.feed(9).contains(&ph.stable));
    }

    #[test]
    fn ghosts_never_overlap_the_live_day_table() {
        let m = model();
        let s = &m.scenario;
        for day in [0u16, 3, 7, 11] {
            let live = s.day_hosts(day);
            for g in s.ghosts(day) {
                assert!(!live.contains_key(&addr_to_u128(g)), "day {day}: {g}");
            }
        }
    }

    #[test]
    fn feed_is_deterministic_and_nonempty() {
        let a = model();
        let b = model();
        for day in 0..6u16 {
            let fa = a.scenario.feed(day);
            assert_eq!(fa, b.scenario.feed(day));
            assert!(!fa.is_empty());
        }
    }
}
