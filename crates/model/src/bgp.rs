//! BGP announcements of the synthetic Internet.

use crate::ids::{AsCategory, AsInfo, Asn};
use expanse_addr::Prefix;
use expanse_trie::PrefixTrie;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv6Addr;

/// The global routing table: announced prefixes and their origin ASes.
#[derive(Debug, Clone)]
pub struct BgpTable {
    trie: PrefixTrie<Asn>,
    list: Vec<(Prefix, Asn)>,
}

impl BgpTable {
    /// Build from announcements.
    pub fn new(announcements: Vec<(Prefix, Asn)>) -> Self {
        let mut trie = PrefixTrie::new();
        for (p, asn) in &announcements {
            trie.insert(*p, *asn);
        }
        BgpTable {
            trie,
            list: announcements,
        }
    }

    /// Longest-prefix match: the covering announcement for `addr`.
    pub fn lookup(&self, addr: Ipv6Addr) -> Option<(Prefix, Asn)> {
        self.trie.longest_match(addr).map(|(p, a)| (p, *a))
    }

    /// Origin AS only.
    pub fn origin(&self, addr: Ipv6Addr) -> Option<Asn> {
        self.lookup(addr).map(|(_, a)| a)
    }

    /// All announcements (stable order).
    pub fn announcements(&self) -> &[(Prefix, Asn)] {
        &self.list
    }

    /// Number of announced prefixes.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }
}

/// Deterministically allocate address space and announcements for `ases`.
///
/// Allocation policy mirrors RIR practice (§4.2 of the paper: "/32
/// prefixes are commonly the smallest blocks assigned to IPv6 networks"):
/// every AS gets one or more /32s (big players get shorter aggregates),
/// and some announce more-specific /48s out of their aggregates. The
/// global unicast space used is `2000::/3`.
pub fn allocate(ases: &[AsInfo], mean_prefixes_per_as: f64, seed: u64) -> Vec<(Prefix, Asn)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb69b_0bb5);
    let mut out = Vec::new();
    // Global /32 counter: walk the 2000::/3 space deterministically.
    // /32 index i maps to prefix 0x2000.. | i << (128-32). 29 usable bits.
    let mut next32: u64 = 0x100; // leave room at the bottom for vantage
    for (i, info) in ases.iter().enumerate() {
        // How many /32 aggregates for this AS (CDNs/ISPs get more).
        let n32: usize = match info.category {
            AsCategory::Cdn => rng.random_range(2..5),
            AsCategory::IspEyeball => rng.random_range(1..4),
            AsCategory::Hoster | AsCategory::Transit => rng.random_range(1..3),
            _ => 1,
        };
        for _ in 0..n32 {
            let base = (0x2u128 << 124) | (u128::from(next32) << 96);
            next32 += 1 + u64::from(rng.random_range(0..3u32)); // gaps, like reality
            let agg = Prefix::from_bits(base, 32);
            out.push((agg, info.asn));
            // Extra more-specific announcements (deaggregation).
            let extra = ((mean_prefixes_per_as - 1.0).max(0.0)
                * rng.random_range(0.0..2.0)
                * if i % 7 == 0 { 3.0 } else { 1.0 }) as usize;
            for _ in 0..extra.min(24) {
                let len = [36u8, 40, 44, 48][rng.random_range(0..4usize)];
                let extra_bits = u32::from(len) - 32;
                let v = u128::from(rng.random::<u16>()) & ((1u128 << extra_bits) - 1);
                let more = Prefix::from_bits(base | (v << (128 - u32::from(len))), len);
                out.push((more, info.asn));
            }
        }
    }
    out.sort();
    out.dedup_by_key(|(p, _)| *p);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AsCategory;

    fn mk_ases(n: usize) -> Vec<AsInfo> {
        (0..n)
            .map(|i| {
                let cat = AsCategory::ALL[i % 6];
                AsInfo::new(Asn(64500 + i as u32), cat, i)
            })
            .collect()
    }

    #[test]
    fn allocation_is_deterministic() {
        let ases = mk_ases(50);
        let a = allocate(&ases, 3.0, 1);
        let b = allocate(&ases, 3.0, 1);
        assert_eq!(a, b);
        assert!(a.len() >= 50, "every AS announces at least one prefix");
    }

    #[test]
    fn every_as_has_an_aggregate() {
        let ases = mk_ases(30);
        let table = BgpTable::new(allocate(&ases, 2.0, 7));
        for info in &ases {
            assert!(
                table
                    .announcements()
                    .iter()
                    .any(|(p, a)| *a == info.asn && p.len() == 32),
                "{} lacks a /32",
                info.asn
            );
        }
    }

    #[test]
    fn more_specifics_covered_by_same_as_aggregate() {
        let ases = mk_ases(40);
        let table = BgpTable::new(allocate(&ases, 4.0, 3));
        for (p, asn) in table.announcements() {
            if p.len() > 32 {
                // The /32 covering this more-specific must exist and
                // belong to the same AS (we never allocate overlapping
                // space to different ASes).
                let agg = table.lookup(p.first()).expect("covered");
                assert_eq!(agg.1, *asn, "{p} originated by {asn} under {}", agg.0);
            }
        }
    }

    #[test]
    fn lookup_prefers_most_specific() {
        let asn_a = Asn(1);
        let asn_b = Asn(1);
        let table = BgpTable::new(vec![
            ("2001:db8::/32".parse().unwrap(), asn_a),
            ("2001:db8:1::/48".parse().unwrap(), asn_b),
        ]);
        let (p, _) = table.lookup("2001:db8:1::5".parse().unwrap()).unwrap();
        assert_eq!(p.len(), 48);
        let (p, _) = table.lookup("2001:db8:2::5".parse().unwrap()).unwrap();
        assert_eq!(p.len(), 32);
        assert_eq!(table.lookup("3fff::1".parse().unwrap()), None);
    }

    #[test]
    fn space_is_global_unicast() {
        let ases = mk_ases(20);
        for (p, _) in allocate(&ases, 2.0, 9) {
            assert!(
                Prefix::from_bits(0x2u128 << 124, 3).covers(&p),
                "{p} outside 2000::/3"
            );
        }
    }
}
