//! Crowdsourced client address collection (§9 of the paper).
//!
//! Two platforms (MTurk-like, ProA-like) recruit participants; a fraction
//! has IPv6. Client addresses are privacy-extension SLAAC addresses in
//! eyeball ASes, mostly behind inbound-filtering CPE (RFC 7084 "outbound
//! only"), with short uptime sessions. RIPE-Atlas-like anchors in the
//! same ASes provide the §9.3 upper-bound comparison.

use crate::churn;
use crate::ids::{AsCategory, Asn};
use crate::InternetModel;
use expanse_addr::fanout::splitmix64;
use expanse_addr::{u128_to_addr, Prefix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv6Addr;

/// Crowdsourcing platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Amazon-Mechanical-Turk-like: larger, more US/IN, higher IPv6 rate.
    Mturk,
    /// Prolific-Academic-like: smaller, more EU.
    ProA,
}

/// One study participant.
#[derive(Debug, Clone)]
pub struct Participant {
    /// Recruiting platform.
    pub platform: Platform,
    /// Every participant has IPv4; this is their v4 AS surrogate id.
    pub asn4: Asn,
    /// Participant country code.
    pub country: &'static str,
    /// IPv6 address, if the participant's network has IPv6.
    pub addr6: Option<Ipv6Addr>,
    /// Asn6.
    pub asn6: Option<Asn>,
    /// Does the CPE forward inbound ICMPv6 at all?
    pub inbound_open: bool,
    /// Churn salt (drives uptime sessions).
    pub salt: u64,
    /// Stays at the same address the whole month (the paper found 7).
    pub pinned: bool,
}

impl Participant {
    /// Is the client's address responsive at `(day, secs)`?
    pub fn responsive_at(&self, day: u16, secs: u64) -> bool {
        if self.addr6.is_none() || !self.inbound_open {
            return false;
        }
        if self.pinned {
            return true;
        }
        churn::client_online(self.salt, day, secs)
    }
}

/// A RIPE-Atlas-like anchor probe used for the §9.3 comparison.
#[derive(Debug, Clone)]
pub struct AtlasProbe {
    /// Addr.
    pub addr: Ipv6Addr,
    /// Origin AS number.
    pub asn: Asn,
    /// Probes answer by design, unless the hosting network filters.
    pub responsive: bool,
}

/// The full §9 study population.
#[derive(Debug, Clone)]
pub struct CrowdStudy {
    /// Study participants.
    pub participants: Vec<Participant>,
    /// RIPE-Atlas-like anchors.
    pub atlas: Vec<AtlasProbe>,
}

/// Country pools per platform (order = sampling weight, descending).
const MTURK_COUNTRIES: [(&str, f64); 5] = [
    ("US", 0.55),
    ("IN", 0.25),
    ("CA", 0.08),
    ("GB", 0.07),
    ("DE", 0.05),
];
const PROA_COUNTRIES: [(&str, f64); 5] = [
    ("GB", 0.40),
    ("US", 0.25),
    ("PL", 0.15),
    ("PT", 0.10),
    ("DE", 0.10),
];

fn pick_country(rng: &mut StdRng, table: &[(&'static str, f64)]) -> &'static str {
    let mut x = rng.random_range(0.0..1.0);
    for (c, w) in table {
        if x < *w {
            return c;
        }
        x -= w;
    }
    table.last().expect("non-empty table").0
}

/// Build the crowdsourcing study over the model's eyeball networks.
///
/// Participant counts follow Table 9 (they are small absolute numbers, so
/// we keep them unscaled): 5707/1176 IPv4 participants, of which
/// 31 %/20.6 % have IPv6.
pub fn build_crowd(model: &InternetModel) -> CrowdStudy {
    let cfg = &model.config;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xc509d);
    let eyeballs: Vec<(Prefix, Asn)> = model
        .population
        .sites
        .iter()
        .filter(|s| s.category == AsCategory::IspEyeball)
        .map(|s| (s.site, s.asn))
        .collect();
    assert!(
        !eyeballs.is_empty(),
        "crowd study requires eyeball networks"
    );
    // Concentrated client ASes: Comcast-like 31.1 %, ATT-like 13.2 %,
    // Reliance-like 7.8 %, then a tail (§9.2).
    let as_weights: Vec<f64> = (0..eyeballs.len())
        .map(|i| match i {
            0 => 0.311,
            1 => 0.132,
            2 => 0.078,
            _ => 0.479 / (eyeballs.len().saturating_sub(3).max(1)) as f64,
        })
        .collect();

    let pick_eyeball = |rng: &mut StdRng| -> (Prefix, Asn) {
        let total: f64 = as_weights.iter().sum();
        let mut x = rng.random_range(0.0..total);
        for (i, w) in as_weights.iter().enumerate() {
            if x < *w {
                return eyeballs[i];
            }
            x -= w;
        }
        *eyeballs.last().expect("non-empty")
    };

    let mut participants = Vec::new();
    let specs = [
        (Platform::Mturk, 5707usize, 0.31f64, &MTURK_COUNTRIES),
        (Platform::ProA, 1176, 0.206, &PROA_COUNTRIES),
    ];
    for (platform, n, v6_rate, countries) in specs {
        for i in 0..n {
            let (site, asn) = pick_eyeball(&mut rng);
            let has_v6 = rng.random_range(0.0..1.0) < v6_rate;
            let (addr6, asn6) = if has_v6 {
                // Privacy-extension address in a customer /64.
                let extra = 64 - site.len();
                let customer = site.subprefix(extra, rng.random_range(0..(1u128 << extra.min(30))));
                let iid = rng.random::<u64>() | 0x0400_0000_0000_0000; // high-ish hamming
                let addr = u128_to_addr(customer.bits() | u128::from(iid));
                (Some(addr), Some(asn))
            } else {
                (None, None)
            };
            participants.push(Participant {
                platform,
                asn4: Asn(70_000 + (splitmix64(i as u64 ^ cfg.seed) % 1000) as u32),
                country: pick_country(&mut rng, countries),
                addr6,
                asn6,
                // §9.3: 17.3 % of collected addresses answered at least
                // one echo request.
                inbound_open: rng.random_range(0.0..1.0) < 0.19,
                salt: rng.random::<u64>(),
                pinned: false,
            });
        }
    }
    // Pin a handful of stable addresses (the paper found 7 responsive the
    // whole month).
    let mut pinned = 0;
    for p in participants.iter_mut() {
        if pinned >= 7 {
            break;
        }
        if p.addr6.is_some() && p.inbound_open {
            p.pinned = true;
            pinned += 1;
        }
    }

    // RIPE-Atlas-like anchors in the same ASes: 1398 probes, 45.8 %
    // reachable (their networks still filter inbound).
    let mut atlas = Vec::new();
    for _ in 0..1398 {
        let (site, asn) = pick_eyeball(&mut rng);
        let extra = 64 - site.len();
        let customer = site.subprefix(extra, rng.random_range(0..(1u128 << extra.min(30))));
        let addr = u128_to_addr(customer.bits() | 0x220);
        atlas.push(AtlasProbe {
            addr,
            asn,
            responsive: rng.random_range(0.0..1.0) < 0.458,
        });
    }

    CrowdStudy {
        participants,
        atlas,
    }
}

impl CrowdStudy {
    /// Participants with an IPv6 address, per platform.
    pub fn v6_count(&self, platform: Platform) -> usize {
        self.participants
            .iter()
            .filter(|p| p.platform == platform && p.addr6.is_some())
            .count()
    }

    /// All collected IPv6 addresses.
    pub fn v6_addrs(&self) -> Vec<Ipv6Addr> {
        self.participants.iter().filter_map(|p| p.addr6).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InternetModel, ModelConfig};

    fn study() -> CrowdStudy {
        let m = InternetModel::build(ModelConfig::tiny(4));
        build_crowd(&m)
    }

    #[test]
    fn platform_counts_match_paper() {
        let s = study();
        let mturk = s
            .participants
            .iter()
            .filter(|p| p.platform == Platform::Mturk)
            .count();
        let proa = s.participants.len() - mturk;
        assert_eq!(mturk, 5707);
        assert_eq!(proa, 1176);
        // IPv6 rates ≈ 31 % / 20.6 %.
        let m6 = s.v6_count(Platform::Mturk) as f64 / mturk as f64;
        let p6 = s.v6_count(Platform::ProA) as f64 / proa as f64;
        assert!((m6 - 0.31).abs() < 0.03, "mturk v6 rate {m6}");
        assert!((p6 - 0.206).abs() < 0.04, "proa v6 rate {p6}");
    }

    #[test]
    fn responsiveness_is_a_small_fraction() {
        let s = study();
        let v6: Vec<&Participant> = s
            .participants
            .iter()
            .filter(|p| p.addr6.is_some())
            .collect();
        // "Responds to at least one of many probes" ≈ inbound_open rate.
        let open = v6.iter().filter(|p| p.inbound_open).count() as f64 / v6.len() as f64;
        assert!((open - 0.19).abs() < 0.05, "open rate {open}");
    }

    #[test]
    fn pinned_participants_always_respond() {
        let s = study();
        let pinned: Vec<&Participant> = s.participants.iter().filter(|p| p.pinned).collect();
        assert_eq!(pinned.len(), 7);
        for p in pinned {
            for day in 0..30 {
                assert!(p.responsive_at(day, 43_200));
            }
        }
    }

    #[test]
    fn closed_clients_never_respond() {
        let s = study();
        let closed = s
            .participants
            .iter()
            .find(|p| p.addr6.is_some() && !p.inbound_open)
            .expect("closed client exists");
        for day in 0..10 {
            for hour in 0..24 {
                assert!(!closed.responsive_at(day, hour * 3600));
            }
        }
    }

    #[test]
    fn atlas_probe_share() {
        let s = study();
        assert_eq!(s.atlas.len(), 1398);
        let up = s.atlas.iter().filter(|a| a.responsive).count() as f64 / 1398.0;
        assert!((up - 0.458).abs() < 0.05, "atlas up {up}");
    }

    #[test]
    fn addresses_live_in_eyeball_space() {
        let m = InternetModel::build(ModelConfig::tiny(4));
        let s = build_crowd(&m);
        for a in s.v6_addrs().iter().take(200) {
            let asn = m.bgp.origin(*a).expect("routed");
            let cat = m.as_category(asn).unwrap();
            assert_eq!(cat, AsCategory::IspEyeball, "{a}");
        }
    }
}
