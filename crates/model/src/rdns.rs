//! The `ip6.arpa` reverse tree and its walker (§8 of the paper).
//!
//! The paper evaluates rDNS as a hitlist source using Fiebig et al.'s
//! dataset; we grow a synthetic PTR tree over the population instead. The
//! walker enumerates it the way rDNS walking works on the real DNS:
//! descend nybble-by-nybble, prune on NXDOMAIN, collect terminal records —
//! and we count queries, since the paper flags walking cost as the reason
//! the source is only "semi-public".

use crate::ids::AsCategory;
use crate::InternetModel;
use expanse_addr::{addr_to_u128, u128_to_addr};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::net::Ipv6Addr;

/// A populated reverse tree: the set of addresses with PTR records,
/// stored sorted for prefix-existence queries.
#[derive(Debug, Clone)]
pub struct RdnsTree {
    /// Sorted address keys.
    keys: Vec<u128>,
}

/// Result of a full tree walk.
#[derive(Debug, Clone)]
pub struct WalkStats {
    /// Addresses.
    pub addresses: Vec<Ipv6Addr>,
    /// DNS queries issued (the cost the paper worries about).
    pub queries: u64,
    /// NXDOMAIN answers received (pruned subtrees).
    pub nxdomains: u64,
}

impl RdnsTree {
    /// Build from any address iterator.
    pub fn new(addrs: impl IntoIterator<Item = Ipv6Addr>) -> Self {
        let mut keys: Vec<u128> = addrs.into_iter().map(addr_to_u128).collect();
        keys.sort_unstable();
        keys.dedup();
        RdnsTree { keys }
    }

    /// Number of PTR records.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Does any record exist under the `depth`-nybble path `prefix`
    /// (prefix = high nybbles, left-aligned)?
    fn exists(&self, prefix: u128, depth: u32) -> bool {
        if depth == 0 {
            return !self.keys.is_empty();
        }
        let shift = 128 - 4 * depth;
        let lo = prefix;
        let hi = prefix | ((1u128 << shift) - 1);
        let i = self.keys.partition_point(|&k| k < lo);
        i < self.keys.len() && self.keys[i] <= hi
    }

    /// Walk the whole tree, NXDOMAIN-pruned, counting queries.
    pub fn walk(&self) -> WalkStats {
        let mut stats = WalkStats {
            addresses: Vec::new(),
            queries: 0,
            nxdomains: 0,
        };
        // Iterative DFS over nybble paths.
        let mut stack: Vec<(u128, u32)> = vec![(0, 0)];
        while let Some((prefix, depth)) = stack.pop() {
            if depth == 32 {
                stats.addresses.push(u128_to_addr(prefix));
                continue;
            }
            let shift = 128 - 4 * (depth + 1);
            for nyb in 0..16u128 {
                let child = prefix | (nyb << shift);
                stats.queries += 1;
                if self.exists(child, depth + 1) {
                    stack.push((child, depth + 1));
                } else {
                    stats.nxdomains += 1;
                }
            }
        }
        stats.addresses.sort();
        stats
    }
}

/// Build the rDNS dataset for a model: mostly *new* addresses (the paper:
/// 11.1 M of 11.7 M rDNS addresses were not in the hitlist), balanced
/// across hosting/enterprise ASes, with a small client share.
pub fn build_rdns(model: &InternetModel, hitlist_sample: &[Ipv6Addr]) -> RdnsTree {
    let cfg = &model.config;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x4d45);
    let mut addrs: Vec<Ipv6Addr> = Vec::new();

    // ~5 % overlap with the existing hitlist.
    let overlap = hitlist_sample.len() / 20;
    addrs.extend(hitlist_sample.iter().take(overlap));

    // Fresh addresses: re-generate per site with a different salt so they
    // are new, drawn evenly (flat AS distribution — Fig 10's point).
    let want_new = (model.population.pool_size() / 5).max(1000);
    let eligible: Vec<&crate::population::SitePool> = model
        .population
        .sites
        .iter()
        .filter(|s| {
            matches!(
                s.category,
                AsCategory::Hoster | AsCategory::Enterprise | AsCategory::Academic
            )
        })
        .collect();
    if !eligible.is_empty() {
        let per_site = (want_new / eligible.len()).max(2);
        for site in &eligible {
            let fresh = site
                .scheme
                .generate(site.site, per_site, cfg.seed ^ 0x4d45_0001);
            addrs.extend(fresh);
        }
    }

    // A pinch of unrouted junk: the paper filtered 2.1 M unrouted rDNS
    // addresses before probing.
    for i in 0..(want_new / 10).max(50) {
        let junk = (0x3fffu128 << 112) | u128::from(rng.random::<u64>());
        addrs.push(u128_to_addr(junk));
        let _ = i;
    }

    addrs.shuffle(&mut rng);
    RdnsTree::new(addrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_finds_exactly_the_records() {
        let addrs: Vec<Ipv6Addr> = vec![
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
            "2001:db8:1::53".parse().unwrap(),
        ];
        let tree = RdnsTree::new(addrs.clone());
        let stats = tree.walk();
        let mut want = addrs;
        want.sort();
        assert_eq!(stats.addresses, want);
        assert!(stats.queries > 0);
        assert!(stats.nxdomains > 0);
    }

    #[test]
    fn pruning_beats_enumeration() {
        // 100 addresses in one /64: queries must be FAR below 16^32.
        let addrs: Vec<Ipv6Addr> = (0..100u128)
            .map(|i| u128_to_addr((0x2001_0db8u128 << 96) | i))
            .collect();
        let tree = RdnsTree::new(addrs);
        let stats = tree.walk();
        assert_eq!(stats.addresses.len(), 100);
        // Each level costs ≤ 16 queries per live node; sanity bound.
        assert!(
            stats.queries < 150_000,
            "queries = {} (pruning broken?)",
            stats.queries
        );
    }

    #[test]
    fn empty_tree() {
        let tree = RdnsTree::new(std::iter::empty());
        assert!(tree.is_empty());
        let stats = tree.walk();
        assert!(stats.addresses.is_empty());
        assert_eq!(stats.queries, 16); // one round at the root
    }

    #[test]
    fn dedup() {
        let a: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let tree = RdnsTree::new(vec![a, a, a]);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn build_rdns_mostly_new() {
        let model = crate::InternetModel::build(crate::ModelConfig::tiny(3));
        let hitlist: Vec<Ipv6Addr> = model
            .population
            .sites
            .iter()
            .flat_map(|s| s.addrs.iter().copied())
            .take(2000)
            .collect();
        let tree = build_rdns(&model, &hitlist);
        assert!(tree.len() > 500);
        let hitset: std::collections::HashSet<u128> =
            hitlist.iter().map(|a| addr_to_u128(*a)).collect();
        let overlap = tree.keys.iter().filter(|k| hitset.contains(k)).count();
        let share = overlap as f64 / tree.len() as f64;
        assert!(share < 0.3, "rDNS should be mostly new, overlap={share}");
    }
}
