//! Forwarding paths: hop counts and router addresses for traceroute.
//!
//! Scamper (§3 of the paper) contributes 25.9 M router addresses to the
//! hitlist, 90.7 % of them SLAAC `ff:fe` addresses of home routers (ZTE,
//! AVM vendor codes). The model therefore gives every destination prefix
//! a deterministic hop chain: transit routers with low-IID addresses,
//! then — for eyeball networks — a CPE last hop with an EUI-64 address.

use crate::ids::AsCategory;
use expanse_addr::fanout::splitmix64;
use expanse_addr::{u128_to_addr, MacAddr, Prefix};
use std::net::Ipv6Addr;

/// Path model parameters (derived from the master seed).
#[derive(Debug, Clone, Copy)]
pub struct PathModel {
    seed: u64,
    /// The /32 transit backbone routers live in.
    transit_net: Prefix,
}

/// CPE vendor OUIs with paper-like concentration (§3: 47.9 % ZTE,
/// 47.7 % AVM, 1.2 % Huawei, long tail).
pub const CPE_OUIS: [([u8; 3], &str); 3] = [
    ([0x00, 0x1e, 0x73], "ZTE"),
    ([0xbc, 0x05, 0x43], "AVM"),
    ([0x00, 0x25, 0x9e], "Huawei"),
];

impl PathModel {
    /// Create a new instance.
    pub fn new(seed: u64) -> Self {
        PathModel {
            seed,
            // A dedicated backbone /32 outside allocated space.
            transit_net: Prefix::from_bits(0x2000_0001u128 << 96, 32),
        }
    }

    /// Total forwarding hops from the vantage to `dst` (the destination
    /// answers at hop `len`). Deterministic per destination /48.
    pub fn path_len(&self, dst: Ipv6Addr, category: AsCategory) -> u8 {
        let key = expanse_addr::addr_to_u128(dst) >> 80; // /48 granularity
        let base = 4 + (splitmix64(key as u64 ^ self.seed) % 4) as u8; // 4..7
        match category {
            // Eyeballs sit one CPE hop deeper.
            AsCategory::IspEyeball => base + 1,
            _ => base,
        }
    }

    /// The router answering with Time Exceeded at hop `hop` (1-based,
    /// `hop < path_len`) on the way to `dst`.
    ///
    /// Hops up to `path_len - 2` are transit backbone routers; the
    /// penultimate hop is an edge router inside the destination AS; for
    /// eyeball destinations the last hop before delivery is the customer
    /// CPE (an EUI-64 address *inside the destination /64's site*).
    pub fn hop_addr(
        &self,
        dst: Ipv6Addr,
        dst_prefix: Prefix,
        category: AsCategory,
        hop: u8,
    ) -> Ipv6Addr {
        let plen = self.path_len(dst, category);
        debug_assert!(hop >= 1 && hop < plen);
        let dst_bits = expanse_addr::addr_to_u128(dst);
        if hop < plen.saturating_sub(2) {
            // Backbone: one router per (coarse direction, hop). Low IIDs —
            // point-to-point link addressing.
            let direction = (dst_bits >> 104) as u64; // /24 granularity
            let rid = splitmix64(self.seed ^ direction ^ (u64::from(hop) << 32)) % 0xffff;
            let iid = u128::from(rid) << 16 | u128::from(hop);
            u128_to_addr(self.transit_net.bits() | iid)
        } else if hop == plen - 1 && category == AsCategory::IspEyeball {
            // CPE: EUI-64 inside the customer's own /64.
            self.cpe_addr(Prefix::from_bits(dst_bits, 64))
        } else {
            // Edge router of the destination AS: low IID in the announced
            // prefix's first /64.
            let rid = splitmix64(self.seed ^ (dst_prefix.bits() >> 64) as u64 ^ u64::from(hop));
            u128_to_addr(dst_prefix.bits() | u128::from(rid % 250 + 1))
        }
    }
}

impl PathModel {
    /// The CPE router address for a customer /64 — the *same* derivation
    /// the hop model uses, so population building and traceroute agree on
    /// CPE identities.
    pub fn cpe_addr(&self, customer64: Prefix) -> Ipv6Addr {
        debug_assert_eq!(customer64.len(), 64);
        let key = splitmix64(self.seed ^ (customer64.bits() >> 64) as u64 ^ CPE_KEY);
        let oui = pick_cpe_oui(key);
        let mac = MacAddr::from_oui(oui, (splitmix64(key ^ 1) % (1 << 24)) as u32);
        mac.slaac_addr(customer64.first())
    }
}

/// Pick a CPE vendor OUI with the paper's concentration.
pub fn pick_cpe_oui(key: u64) -> [u8; 3] {
    match splitmix64(key) % 1000 {
        0..=478 => CPE_OUIS[0].0,
        479..=955 => CPE_OUIS[1].0,
        956..=967 => CPE_OUIS[2].0,
        tail => {
            // Long tail of ~240 other vendors.
            let v = splitmix64(tail ^ key) as u32 % 240;
            [0x40, (v >> 8) as u8, v as u8]
        }
    }
}

/// Domain-separation key for CPE identity derivation.
const CPE_KEY: u64 = 0xc9e5_11fe;

#[cfg(test)]
mod tests {
    use super::*;

    fn pm() -> PathModel {
        PathModel::new(42)
    }

    #[test]
    fn path_len_in_range_and_deterministic() {
        let dst: Ipv6Addr = "2001:db8:1::5".parse().unwrap();
        for cat in AsCategory::ALL {
            let l = pm().path_len(dst, cat);
            assert_eq!(l, pm().path_len(dst, cat));
            assert!((4..=8).contains(&l), "{cat:?}: {l}");
        }
        assert_eq!(
            pm().path_len(dst, AsCategory::IspEyeball),
            pm().path_len(dst, AsCategory::Hoster) + 1
        );
    }

    #[test]
    fn same_48_same_path() {
        let a: Ipv6Addr = "2001:db8:1::5".parse().unwrap();
        let b: Ipv6Addr = "2001:db8:1:ffff::9".parse().unwrap();
        assert_eq!(
            pm().path_len(a, AsCategory::Hoster),
            pm().path_len(b, AsCategory::Hoster)
        );
    }

    #[test]
    fn eyeball_last_hop_is_cpe_slaac() {
        let dst: Ipv6Addr = "2001:db8:99:1234::abcd".parse().unwrap();
        let pfx: Prefix = "2001:db8::/32".parse().unwrap();
        let cat = AsCategory::IspEyeball;
        let plen = pm().path_len(dst, cat);
        let cpe = pm().hop_addr(dst, pfx, cat, plen - 1);
        assert!(expanse_addr::is_eui64(cpe), "CPE must be EUI-64: {cpe}");
        // CPE lives in the customer's /64.
        assert!(Prefix::new(dst, 64).contains(cpe));
    }

    #[test]
    fn backbone_hops_in_transit_net() {
        let dst: Ipv6Addr = "2001:db8:99::1".parse().unwrap();
        let pfx: Prefix = "2001:db8::/32".parse().unwrap();
        let h1 = pm().hop_addr(dst, pfx, AsCategory::Hoster, 1);
        assert!(pm().transit_net.contains(h1), "{h1}");
        // Deterministic.
        assert_eq!(h1, pm().hop_addr(dst, pfx, AsCategory::Hoster, 1));
    }

    #[test]
    fn edge_hop_in_destination_prefix() {
        let dst: Ipv6Addr = "2001:db8:99::1".parse().unwrap();
        let pfx: Prefix = "2001:db8::/32".parse().unwrap();
        let cat = AsCategory::Hoster;
        let plen = pm().path_len(dst, cat);
        let edge = pm().hop_addr(dst, pfx, cat, plen - 1);
        assert!(pfx.contains(edge), "{edge}");
    }

    #[test]
    fn cpe_oui_concentration() {
        let n = 20_000u64;
        let zte = (0..n).filter(|k| pick_cpe_oui(*k) == CPE_OUIS[0].0).count() as f64 / n as f64;
        assert!((zte - 0.479).abs() < 0.02, "zte={zte}");
        let avm = (0..n).filter(|k| pick_cpe_oui(*k) == CPE_OUIS[1].0).count() as f64 / n as f64;
        assert!((avm - 0.477).abs() < 0.02, "avm={avm}");
    }
}
