//! Population builder: sites, address pools, live hosts, machines,
//! aliased regions, and the pathological corners of §5.1.

use crate::alias::{AliasRegion, AliasTable};
use crate::config::ModelConfig;
use crate::fingerprint::{Machine, MachineId, OptLayout, Pathology, TsBehavior};
use crate::host::{HostKind, HostProfile, StabilityClass};
use crate::ids::{AsCategory, AsInfo, Asn};
use crate::paths::PathModel;
use crate::scheme::Scheme;
use expanse_addr::fanout::splitmix64;
use expanse_addr::{addr_to_u128, Prefix};
use expanse_packet::{ProtoSet, Protocol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::Ipv6Addr;

/// One allocation site: an announced prefix with an addressing scheme and
/// its sampled address pool (live hosts first, then ghosts).
#[derive(Debug, Clone)]
pub struct SitePool {
    /// The allocation prefix.
    pub site: Prefix,
    /// Origin AS number.
    pub asn: Asn,
    /// Organization category.
    pub category: AsCategory,
    /// Addressing scheme in use.
    pub scheme: Scheme,
    /// Known addresses under this site (live + ghost, shuffled).
    pub addrs: Vec<Ipv6Addr>,
}

/// The hand-built pathological prefixes of §5.1, kept addressable so
/// experiments and tests can point at them.
#[derive(Debug, Clone)]
pub struct SpecialPrefixes {
    /// A /96 of which exactly 9 of the 16 /100 subprefixes are aliased —
    /// the false-positive trap for purely random APD probes (case 3).
    pub partial96: Prefix,
    /// An aliased /116 whose 0x0 branch is carved out (answered by a
    /// different system; silent to probes) — 15-of-16 anomaly.
    pub carve116: Prefix,
    /// Parent /116 of the ICMP-rate-limited region (case 4).
    pub rate_limit_parent: Prefix,
    /// Six neighbouring /120s inside it that flap day-to-day.
    pub rate_limited: Vec<Prefix>,
    /// /80 prefixes behind a SYN proxy (3–5 of 16 TCP probes answered).
    pub syn_proxy: Vec<Prefix>,
    /// The Amazon-like aliased /48s (the "outer hook" of Fig 5b).
    pub cdn_hook_48s: Vec<Prefix>,
}

/// Everything the population builder produces.
#[derive(Debug, Clone)]
pub struct Population {
    /// Sites.
    pub sites: Vec<SitePool>,
    /// Live hosts by address.
    pub hosts: HashMap<u128, HostProfile>,
    /// Machine personality table.
    pub machines: Vec<Machine>,
    /// Aliased region table.
    pub aliases: AliasTable,
    /// Addresses sources sample from inside aliased regions.
    pub alias_pool: Vec<Ipv6Addr>,
    /// The §5.1 pathological prefixes.
    pub special: SpecialPrefixes,
    /// High-loss prefixes (the §5.2 sliding-window motivation).
    pub lossy: Vec<Prefix>,
}

impl Population {
    /// Count of live hosts.
    pub fn live_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Total pool size (non-aliased known addresses).
    pub fn pool_size(&self) -> usize {
        self.sites.iter().map(|s| s.addrs.len()).sum()
    }
}

/// Scheme mix per AS category: `(scheme, weight)`.
fn scheme_mix(cat: AsCategory) -> &'static [(Scheme, f64)] {
    match cat {
        AsCategory::Cdn => &[(Scheme::StructuredCounter, 0.5), (Scheme::RandomIid, 0.5)],
        AsCategory::Hoster => &[
            (Scheme::TinyCounter, 0.55),
            (Scheme::StructuredCounter, 0.30),
            (Scheme::RandomIid, 0.15),
        ],
        AsCategory::IspEyeball => &[
            (Scheme::Eui64Cpe, 0.55),
            (Scheme::RandomIid, 0.30),
            (Scheme::Eui64Mixed, 0.15),
        ],
        AsCategory::Transit => &[(Scheme::TinyCounter, 0.7), (Scheme::ServiceWords, 0.3)],
        AsCategory::Academic => &[
            (Scheme::StructuredCounter, 0.45),
            (Scheme::ServiceWords, 0.25),
            (Scheme::Eui64Mixed, 0.30),
        ],
        AsCategory::Enterprise => &[
            (Scheme::ServiceWords, 0.4),
            (Scheme::TinyCounter, 0.35),
            (Scheme::Eui64Mixed, 0.25),
        ],
    }
}

fn pick_weighted<T: Copy>(rng: &mut StdRng, items: &[(T, f64)]) -> T {
    let total: f64 = items.iter().map(|(_, w)| w).sum();
    let mut x = rng.random_range(0.0..total);
    for (item, w) in items {
        if x < *w {
            return *item;
        }
        x -= w;
    }
    items.last().expect("non-empty weights").0
}

/// Host-kind mix per category for live hosts: `(kind, weight)`.
fn kind_mix(cat: AsCategory) -> &'static [(HostKind, f64)] {
    match cat {
        AsCategory::Cdn => &[(HostKind::WebServer, 0.9), (HostKind::DnsServer, 0.1)],
        AsCategory::Hoster => &[
            (HostKind::WebServer, 0.6),
            (HostKind::MixedServer, 0.2),
            (HostKind::DnsServer, 0.2),
        ],
        AsCategory::IspEyeball => &[
            (HostKind::CpeRouter, 0.75),
            (HostKind::Client, 0.20),
            (HostKind::DnsServer, 0.05),
        ],
        AsCategory::Transit => &[(HostKind::CoreRouter, 0.9), (HostKind::DnsServer, 0.1)],
        AsCategory::Academic => &[
            (HostKind::WebServer, 0.4),
            (HostKind::MixedServer, 0.3),
            (HostKind::CoreRouter, 0.2),
            (HostKind::DnsServer, 0.1),
        ],
        AsCategory::Enterprise => &[
            (HostKind::WebServer, 0.5),
            (HostKind::MixedServer, 0.3),
            (HostKind::DnsServer, 0.2),
        ],
    }
}

/// Live-host budget share per category (fractions of `n_live_hosts`).
fn live_share(cat: AsCategory) -> f64 {
    match cat {
        AsCategory::Cdn => 0.06,
        AsCategory::Hoster => 0.30,
        AsCategory::IspEyeball => 0.38,
        AsCategory::Transit => 0.08,
        AsCategory::Academic => 0.08,
        AsCategory::Enterprise => 0.10,
    }
}

/// Builder context.
pub struct Builder<'a> {
    cfg: &'a ModelConfig,
    rng: StdRng,
    machines: Vec<Machine>,
}

impl<'a> Builder<'a> {
    /// Create a new instance.
    pub fn new(cfg: &'a ModelConfig) -> Self {
        Builder {
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x9e3779b97f4a7c15),
            machines: Vec::new(),
        }
    }

    fn new_machine(&mut self, m: Machine) -> MachineId {
        let id = MachineId(self.machines.len() as u32);
        self.machines.push(m);
        id
    }

    /// A fresh single-host machine personality for `kind`.
    fn host_machine(&mut self, kind: HostKind) -> MachineId {
        let salt = self.rng.random::<u64>();
        let r = self.rng.random_range(0..100u32);
        let ittl = match kind {
            HostKind::CoreRouter | HostKind::CpeRouter => {
                if r < 70 {
                    255
                } else {
                    64
                }
            }
            _ => match r {
                0..=74 => 64,
                75..=89 => 128,
                _ => 255,
            },
        };
        let mss = [1440u16, 1460, 1452, 1400, 8960][self.rng.random_range(0..5usize)];
        let wscale = [7u8, 8, 9, 2, 14][self.rng.random_range(0..5usize)];
        let wsize = [64240u16, 65535, 29200, 14600, 5840][self.rng.random_range(0..5usize)];
        let layout = match self.rng.random_range(0..1000u32) {
            0..=994 => OptLayout::Standard, // paper: 99.5 % choose this set
            995..=997 => OptLayout::NoTimestamps,
            _ => OptLayout::NoSack,
        };
        let ts = match self.rng.random_range(0..100u32) {
            // Post-4.10 Linux majority.
            0..=59 => TsBehavior::PerTupleRandom { rate_hz: 1000 },
            60..=89 => TsBehavior::GlobalMonotonic {
                rate_hz: [100u32, 250, 1000][self.rng.random_range(0..3usize)],
                offset: self.rng.random::<u32>(),
            },
            _ => TsBehavior::None,
        };
        self.new_machine(Machine {
            ittl,
            mss,
            wscale,
            wsize,
            layout,
            ts,
            pathology: Pathology::None,
            salt,
        })
    }

    /// A CDN-style aliased-region machine; pathology per config rate with
    /// Table 5's observed mix.
    fn alias_machine(&mut self) -> MachineId {
        let salt = self.rng.random::<u64>();
        let pathology = if self.rng.random_range(0.0..1.0) < self.cfg.alias_pathology_rate {
            // Table 5 ratio of inconsistents: WSize 1068, MSS 1030,
            // WScale 105, Optionstext 104, iTTL 6.
            pick_weighted(
                &mut self.rng,
                &[
                    (Pathology::FlakyWsize, 1068.0),
                    (Pathology::FlakyMss, 1030.0),
                    (Pathology::FlakyWscale, 105.0),
                    (Pathology::FlakyOptions, 104.0),
                    (Pathology::FlakyIttl, 6.0),
                ],
            )
        } else {
            Pathology::None
        };
        let ts = if self.rng.random_range(0..100u32) < 70 {
            // Most aliased machines expose a global counter — that is
            // what makes the paper's timestamp test land at 63.8 %.
            TsBehavior::GlobalMonotonic {
                rate_hz: [100u32, 250, 1000][self.rng.random_range(0..3usize)],
                offset: self.rng.random::<u32>(),
            }
        } else {
            TsBehavior::PerTupleRandom { rate_hz: 1000 }
        };
        self.new_machine(Machine {
            ittl: 255,
            mss: 1440,
            wscale: 9,
            wsize: 65535,
            layout: OptLayout::Standard,
            ts,
            pathology,
            salt,
        })
    }

    fn death_day(&mut self, stability: StabilityClass) -> u16 {
        let survival = match stability {
            StabilityClass::Permanent => return u16::MAX,
            StabilityClass::Server => self.cfg.server_daily_survival,
            StabilityClass::Cpe => self.cfg.cpe_daily_survival,
            StabilityClass::Client => self.cfg.client_daily_survival,
        };
        // Geometric: death on the first day the survival coin fails.
        let u: f64 = self.rng.random_range(0.0f64..1.0).max(1e-12);
        let d = (u.ln() / survival.ln()).ceil();
        if d >= f64::from(u16::MAX) {
            u16::MAX
        } else {
            (d as u16).max(1)
        }
    }

    fn stability_for(kind: HostKind) -> StabilityClass {
        match kind {
            HostKind::WebServer | HostKind::DnsServer | HostKind::MixedServer => {
                StabilityClass::Server
            }
            HostKind::CoreRouter => StabilityClass::Permanent,
            HostKind::CpeRouter => StabilityClass::Cpe,
            HostKind::Client => StabilityClass::Client,
        }
    }

    /// Protocol stack for a live host, with firewall-policy noise shaped
    /// to reproduce Fig 7's conditional structure.
    fn protos_for(&mut self, kind: HostKind) -> ProtoSet {
        let mut r = |p: f64| self.rng.random_range(0.0..1.0) < p;
        match kind {
            HostKind::WebServer => {
                let mut s = ProtoSet::only(Protocol::Tcp80);
                if r(0.99) {
                    s = s.with(Protocol::Icmp);
                }
                let https = r(0.91);
                if https {
                    s = s.with(Protocol::Tcp443);
                    if r(0.30) {
                        s = s.with(Protocol::Udp443); // QUIC implies HTTPS
                    }
                }
                s
            }
            HostKind::DnsServer => {
                let mut s = ProtoSet::only(Protocol::Udp53);
                if r(0.89) {
                    s = s.with(Protocol::Icmp);
                }
                // DNS servers co-hosting web services (Fig 7: P[TCP/80 |
                // UDP/53] ≈ 0.61).
                if r(0.61) {
                    s = s.with(Protocol::Tcp80);
                    if r(0.85) {
                        s = s.with(Protocol::Tcp443);
                    }
                }
                s
            }
            HostKind::MixedServer => {
                let mut s = ProtoSet::only(Protocol::Icmp)
                    .with(Protocol::Tcp80)
                    .with(Protocol::Tcp443);
                if r(0.5) {
                    s = s.with(Protocol::Udp53);
                }
                if r(0.12) {
                    s = s.with(Protocol::Udp443);
                }
                s
            }
            HostKind::CoreRouter => {
                let mut s = ProtoSet::only(Protocol::Icmp);
                if r(0.05) {
                    s = s.with(Protocol::Tcp80); // admin UIs
                }
                s
            }
            HostKind::CpeRouter => ProtoSet::only(Protocol::Icmp),
            HostKind::Client => {
                if r(0.55) {
                    ProtoSet::only(Protocol::Icmp)
                } else {
                    ProtoSet::EMPTY // inbound-filtered
                }
            }
        }
    }

    /// Build the full population.
    pub fn build(
        mut self,
        ases: &[AsInfo],
        announcements: &[(Prefix, Asn)],
        paths: &PathModel,
    ) -> Population {
        let by_asn: HashMap<Asn, &AsInfo> = ases.iter().map(|a| (a.asn, a)).collect();
        let mut sites: Vec<SitePool> = Vec::new();
        let mut hosts: HashMap<u128, HostProfile> = HashMap::new();
        let mut aliases = AliasTable::new();
        let mut alias_pool: Vec<Ipv6Addr> = Vec::new();
        let mut lossy: Vec<Prefix> = Vec::new();

        // ---- budget live hosts per category --------------------------------
        let mut cat_sites: HashMap<AsCategory, Vec<(Prefix, Asn)>> = HashMap::new();
        for (p, asn) in announcements {
            let cat = by_asn[asn].category;
            cat_sites.entry(cat).or_default().push((*p, *asn));
        }

        // One addressing scheme per AS: operators deploy the same plan
        // across their prefixes (§4, Fig 3b: "operators using the same
        // addressing scheme ... in their prefixes"). This is also what
        // keeps /32-level entropy fingerprints crisp.
        let mut scheme_of_as: HashMap<Asn, Scheme> = HashMap::new();
        for cat in AsCategory::ALL {
            let Some(list) = cat_sites.get(&cat) else {
                continue;
            };
            for (_, asn) in list {
                if !scheme_of_as.contains_key(asn) {
                    let s = pick_weighted(&mut self.rng, scheme_mix(cat));
                    scheme_of_as.insert(*asn, s);
                }
            }
        }
        for cat in AsCategory::ALL {
            let Some(list) = cat_sites.get(&cat) else {
                continue;
            };
            let budget = (self.cfg.n_live_hosts as f64 * live_share(cat)).round() as usize;
            if budget == 0 || list.is_empty() {
                continue;
            }
            // Zipf-ish weights over sites so concentration curves have a
            // realistic top-heavy shape per source (Fig 1b).
            let weights: Vec<f64> = (0..list.len())
                .map(|i| 1.0 / (1.0 + i as f64).powf(0.85))
                .collect();
            let wtotal: f64 = weights.iter().sum();
            for (i, (site, asn)) in list.iter().enumerate() {
                let scheme = scheme_of_as[asn];
                let n_live = ((budget as f64) * weights[i] / wtotal).round().max(0.0) as usize;
                let n_ghost = ((n_live as f64) * self.cfg.ghost_ratio) as usize;
                let want = n_live + n_ghost;
                if want == 0 {
                    continue;
                }
                let addrs = scheme.generate(*site, want, self.cfg.seed ^ 0x517e);
                for (j, &addr) in addrs.iter().enumerate() {
                    if j >= n_live {
                        break;
                    }
                    let kind = pick_weighted(&mut self.rng, kind_mix(cat));
                    let stability = Builder::stability_for(kind);
                    let machine = self.host_machine(kind);
                    let protos = self.protos_for(kind);
                    hosts.insert(
                        addr_to_u128(addr),
                        HostProfile {
                            asn: *asn,
                            kind,
                            protos,
                            machine,
                            stability,
                            spawn_day: 0,
                            death_day: self.death_day(stability),
                        },
                    );
                }
                sites.push(SitePool {
                    site: *site,
                    asn: *asn,
                    category: cat,
                    scheme,
                    addrs,
                });
            }
        }

        // ---- CPE identities from the path model ----------------------------
        // For eyeball sites: register the CPE router of each customer /64
        // that appears in the pool, so scamper-discovered hops and direct
        // probes agree.
        let mut cpe_addrs: Vec<(Ipv6Addr, Asn)> = Vec::new();
        for sp in &sites {
            if sp.category != AsCategory::IspEyeball {
                continue;
            }
            let mut seen64 = std::collections::HashSet::new();
            for a in &sp.addrs {
                let c64 = Prefix::new(*a, 64);
                if seen64.insert(c64.bits()) {
                    cpe_addrs.push((paths.cpe_addr(c64), sp.asn));
                }
            }
        }
        for (addr, asn) in &cpe_addrs {
            let key = addr_to_u128(*addr);
            if hosts.contains_key(&key) {
                continue;
            }
            // Only a fraction of CPEs answer direct probes (inbound
            // filtering, RFC 7084 "outbound only"); the rest exist solely
            // as traceroute hops.
            let responds = self.rng.random_range(0.0..1.0) < 0.5;
            let machine = self.host_machine(HostKind::CpeRouter);
            hosts.insert(
                key,
                HostProfile {
                    asn: *asn,
                    kind: HostKind::CpeRouter,
                    protos: if responds {
                        ProtoSet::only(Protocol::Icmp)
                    } else {
                        ProtoSet::EMPTY
                    },
                    machine,
                    stability: StabilityClass::Cpe,
                    spawn_day: 0,
                    death_day: self.death_day(StabilityClass::Cpe),
                },
            );
        }

        // ---- load-balancer and rack /64s (Table 6 validation material) -----
        self.build_server_farms(&mut sites, &mut hosts);

        // ---- aliased regions ------------------------------------------------
        let special = self.build_aliases(
            ases,
            announcements,
            &mut aliases,
            &mut alias_pool,
            &mut lossy,
        );

        // ---- lossy ordinary prefixes ---------------------------------------
        for (p, _) in announcements {
            if self.rng.random_range(0.0..1.0) < self.cfg.lossy_prefix_fraction {
                lossy.push(*p);
            }
        }

        Population {
            sites,
            hosts,
            machines: self.machines,
            aliases,
            alias_pool,
            special,
            lossy,
        }
    }

    /// Hoster /64s that hold many live addresses: "racks" (distinct
    /// machines → inconsistent fingerprints) and "LBs" (one machine with
    /// many bound addresses → consistent fingerprints but NOT aliased).
    /// These produce Table 6's non-aliased validation mix.
    fn build_server_farms(
        &mut self,
        sites: &mut Vec<SitePool>,
        hosts: &mut HashMap<u128, HostProfile>,
    ) {
        let hoster_sites: Vec<(Prefix, Asn)> = sites
            .iter()
            .filter(|s| s.category == AsCategory::Hoster && s.site.len() <= 48)
            .map(|s| (s.site, s.asn))
            .collect();
        if hoster_sites.is_empty() {
            return;
        }
        let n_farms = (hoster_sites.len() / 3).clamp(4, 200);
        for i in 0..n_farms {
            let (site, asn) = hoster_sites[self.rng.random_range(0..hoster_sites.len())];
            // Pick a /64 inside the site.
            let extra = 64 - site.len();
            let sub = self.rng.random_range(0..(1u128 << extra.min(32)));
            let farm64 = site.subprefix(extra, sub);
            let is_lb = i % 3 == 0; // 1/3 LBs, 2/3 racks
            let n_addrs = self.rng.random_range(18..40usize);
            let lb_machine = if is_lb {
                // One machine, global monotonic counter: passes the
                // paper's high-confidence timestamp test.
                let salt = self.rng.random::<u64>();
                let offset = self.rng.random::<u32>();
                Some(self.new_machine(Machine {
                    ts: TsBehavior::GlobalMonotonic {
                        rate_hz: 1000,
                        offset,
                    },
                    ..Machine::linux_like(salt)
                }))
            } else {
                None
            };
            let mut addrs = Vec::with_capacity(n_addrs);
            for k in 0..n_addrs {
                let addr = farm64.addr_at(1 + k as u128); // counter IIDs
                addrs.push(addr);
                let machine = match lb_machine {
                    Some(m) => m,
                    None => self.host_machine(HostKind::WebServer),
                };
                let protos = ProtoSet::only(Protocol::Icmp)
                    .with(Protocol::Tcp80)
                    .with(Protocol::Tcp443);
                hosts.insert(
                    addr_to_u128(addr),
                    HostProfile {
                        asn,
                        kind: HostKind::WebServer,
                        protos,
                        machine,
                        stability: StabilityClass::Server,
                        spawn_day: 0,
                        death_day: self.death_day(StabilityClass::Server),
                    },
                );
            }
            sites.push(SitePool {
                site: farm64,
                asn,
                category: AsCategory::Hoster,
                scheme: Scheme::TinyCounter,
                addrs,
            });
        }
    }

    fn build_aliases(
        &mut self,
        ases: &[AsInfo],
        announcements: &[(Prefix, Asn)],
        aliases: &mut AliasTable,
        alias_pool: &mut Vec<Ipv6Addr>,
        lossy: &mut Vec<Prefix>,
    ) -> SpecialPrefixes {
        let cdns: Vec<&AsInfo> = ases
            .iter()
            .filter(|a| a.category == AsCategory::Cdn)
            .collect();
        let cdn_aggregates: Vec<Prefix> = announcements
            .iter()
            .filter(|(p, asn)| p.len() == 32 && cdns.first().is_some_and(|c| c.asn == *asn))
            .map(|(p, _)| *p)
            .collect();
        assert!(
            !cdn_aggregates.is_empty(),
            "model needs at least one CDN /32 for the aliased hook"
        );

        // --- the Amazon-like hook: consecutive aliased /48s -----------------
        let mut cdn_hook_48s = Vec::new();
        let per_agg = self.cfg.cdn_aliased_48s / cdn_aggregates.len().max(1) + 1;
        'outer: for agg in &cdn_aggregates {
            for i in 0..per_agg {
                if cdn_hook_48s.len() >= self.cfg.cdn_aliased_48s {
                    break 'outer;
                }
                let p48 = agg.subprefix(16, i as u128);
                let machine = self.alias_machine();
                aliases.insert(
                    p48,
                    AliasRegion {
                        machine,
                        protos: ProtoSet::only(Protocol::Icmp)
                            .with(Protocol::Tcp80)
                            .with(Protocol::Tcp443),
                        carve_branch: None,
                    },
                );
                cdn_hook_48s.push(p48);
            }
        }

        // --- the Incapsula-like inner hook (second CDN AS) ------------------
        if let Some(second) = cdns.get(1) {
            let aggs: Vec<Prefix> = announcements
                .iter()
                .filter(|(p, asn)| p.len() == 32 && *asn == second.asn)
                .map(|(p, _)| *p)
                .collect();
            let n = if aggs.is_empty() {
                0
            } else {
                self.cfg.cdn_aliased_48s / 3
            };
            for (i, agg) in aggs.iter().cycle().take(n).enumerate() {
                let p48 = agg.subprefix(16, (0x100 + i) as u128);
                let machine = self.alias_machine();
                aliases.insert(
                    p48,
                    AliasRegion {
                        machine,
                        protos: ProtoSet::only(Protocol::Icmp).with(Protocol::Tcp80),
                        carve_branch: None,
                    },
                );
            }
        }

        // --- scattered aliased prefixes of various lengths -------------------
        let n_scattered =
            ((announcements.len() as f64 * self.cfg.aliased_prefix_fraction) as usize).max(8);
        let candidates: Vec<(Prefix, Asn)> = announcements
            .iter()
            .filter(|(p, _)| p.len() <= 48)
            .copied()
            .collect();
        for _ in 0..n_scattered {
            let (base, _) = candidates[self.rng.random_range(0..candidates.len())];
            let target_len = *[48u8, 56, 64, 80, 96, 112]
                .iter()
                .filter(|&&l| l > base.len())
                .nth(self.rng.random_range(0..4usize).min(3))
                .unwrap_or(&64);
            let extra = target_len - base.len();
            let idx = self.rng.random_range(0..(1u128 << extra.min(40)));
            let p = base.subprefix(extra, idx);
            let machine = self.alias_machine();
            aliases.insert(
                p,
                AliasRegion {
                    machine,
                    protos: ProtoSet::only(Protocol::Icmp).with(Protocol::Tcp80),
                    carve_branch: None,
                },
            );
            // A quarter of the scattered regions sit behind lossy paths —
            // the sliding-window material of Table 4.
            if self.rng.random_range(0.0..1.0) < 0.25 {
                lossy.push(p);
            }
        }

        // --- §5.1 specials ----------------------------------------------------
        let host_agg = announcements
            .iter()
            .find(|(p, asn)| {
                p.len() == 32
                    && ases
                        .iter()
                        .any(|a| a.asn == *asn && a.category == AsCategory::Hoster)
            })
            .map(|(p, _)| *p)
            .expect("model needs a hoster /32 for special prefixes");

        // (3) /96 with 9 of 16 /100s aliased.
        let partial96 = host_agg.subprefix(64, 0xbad0_0000_0000_0001);
        let m = self.alias_machine();
        for branch in [0u128, 1, 2, 4, 6, 9, 10, 12, 15] {
            aliases.insert(
                partial96.subprefix(4, branch),
                AliasRegion {
                    machine: m,
                    protos: ProtoSet::only(Protocol::Icmp).with(Protocol::Tcp80),
                    carve_branch: None,
                },
            );
        }

        // /116 with a carved 0x0 branch (answered elsewhere; silent here).
        let carve116 = host_agg.subprefix(84, 0xcafe_0000_0000_0000_0002);
        let m = self.alias_machine();
        aliases.insert(
            carve116,
            AliasRegion {
                machine: m,
                protos: ProtoSet::only(Protocol::Icmp).with(Protocol::Tcp80),
                carve_branch: Some(0),
            },
        );

        // ICMP-rate-limited /116 containing six flapping /120s.
        let rate_limit_parent = host_agg.subprefix(84, 0x11c0_0000_0000_0000_0003);
        let m = self.alias_machine();
        aliases.insert(
            rate_limit_parent,
            AliasRegion {
                machine: m,
                // ICMP-only: TCP cannot rescue these, only the sliding
                // window does (§5.2).
                protos: ProtoSet::only(Protocol::Icmp),
                carve_branch: None,
            },
        );
        let rate_limited: Vec<Prefix> = (0..self.cfg.rate_limited_120s as u128)
            .map(|i| rate_limit_parent.subprefix(4, i))
            .collect();

        // SYN-proxied /80s.
        let syn_proxy: Vec<Prefix> = (0..self.cfg.syn_proxy_80s as u128)
            .map(|i| host_agg.subprefix(48, 0x5151_0000_0000 + i))
            .collect();

        // --- alias pool: the addresses sources will sample -------------------
        // Volume: aliased_addr_share of the final hitlist. Computed from
        // the expected non-aliased pool size.
        let non_aliased: usize =
            self.cfg.n_live_hosts + (self.cfg.n_live_hosts as f64 * self.cfg.ghost_ratio) as usize;
        let want = ((non_aliased as f64) * self.cfg.aliased_addr_share
            / (1.0 - self.cfg.aliased_addr_share)) as usize;
        // Concentrate on the dominant CDN's hook (Table 2's 89.7%-style
        // top-AS skew): ~84% outer hook, ~13% inner hook, 3% scattered.
        let outer: Vec<Prefix> = cdn_hook_48s.clone();
        let inner: Vec<Prefix> = aliases
            .iter()
            .filter(|(p, _)| p.len() == 48 && !outer.contains(p))
            .map(|(p, _)| p)
            .collect();
        for i in 0..want {
            let roll = splitmix64(i as u64 ^ self.cfg.seed ^ 0x9001) % 100;
            let pool: &[Prefix] = if roll < 84 || inner.is_empty() {
                &outer
            } else {
                &inner
            };
            let p = pool[i % pool.len()];
            // CDN-mapped addresses: structured-random inside the /48.
            let addr = expanse_addr::keyed_random_addr(
                p.subprefix(16, (splitmix64(i as u64 ^ self.cfg.seed) % 64) as u128),
                self.cfg.seed ^ i as u64,
            );
            alias_pool.push(addr);
        }

        SpecialPrefixes {
            partial96,
            carve116,
            rate_limit_parent,
            rate_limited,
            syn_proxy,
            cdn_hook_48s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp;

    fn build_tiny() -> Population {
        let cfg = ModelConfig::tiny(7);
        let ases = crate::build_ases(&cfg);
        let ann = bgp::allocate(&ases, cfg.mean_prefixes_per_as, cfg.seed);
        let paths = PathModel::new(cfg.seed);
        Builder::new(&cfg).build(&ases, &ann, &paths)
    }

    #[test]
    fn population_builds_with_live_hosts() {
        let pop = build_tiny();
        assert!(pop.live_hosts() > 1000, "live={}", pop.live_hosts());
        assert!(pop.pool_size() > pop.live_hosts());
        assert!(!pop.aliases.is_empty());
        assert!(!pop.alias_pool.is_empty());
    }

    #[test]
    fn aliased_share_close_to_config() {
        let pop = build_tiny();
        let aliased = pop.alias_pool.len() as f64;
        let total = aliased + pop.pool_size() as f64;
        let share = aliased / total;
        assert!(
            (share - 0.466).abs() < 0.12,
            "aliased share {share} (want ≈ 0.466)"
        );
    }

    #[test]
    fn alias_pool_addresses_resolve_to_regions() {
        let pop = build_tiny();
        for a in pop.alias_pool.iter().take(500) {
            assert!(pop.aliases.resolve(*a).is_some(), "{a} not in any region");
        }
    }

    #[test]
    fn live_hosts_are_in_site_pools_or_farm_or_cpe() {
        let pop = build_tiny();
        // Every site pool's first addresses must be live hosts... at least
        // a large fraction of hosts must come from pools.
        let pool_set: std::collections::HashSet<u128> = pop
            .sites
            .iter()
            .flat_map(|s| s.addrs.iter().map(|a| addr_to_u128(*a)))
            .collect();
        let in_pool = pop.hosts.keys().filter(|k| pool_set.contains(k)).count();
        // CPE hosts derive from the path model instead of site pools, so
        // pools cover a large minority (not a majority) of host entries.
        assert!(
            in_pool * 3 > pop.hosts.len(),
            "≥1/3 of hosts should be pool addresses: {in_pool}/{}",
            pop.hosts.len()
        );
    }

    #[test]
    fn specials_are_registered() {
        let pop = build_tiny();
        let s = &pop.special;
        assert_eq!(s.partial96.len(), 96);
        assert_eq!(s.carve116.len(), 116);
        assert_eq!(s.rate_limited.len(), 2); // tiny config
        assert!(!s.cdn_hook_48s.is_empty());
        // partial96: exactly 9 aliased /100 children.
        let aliased_children = (0..16u128)
            .filter(|b| pop.aliases.contains_region(s.partial96.subprefix(4, *b)))
            .count();
        assert_eq!(aliased_children, 9);
        // The /96 itself is not a region.
        assert!(!pop.aliases.contains_region(s.partial96));
        // carve116 branch 0 silent, branch 5 resolves.
        let carved = s.carve116.subprefix(4, 0);
        assert!(pop
            .aliases
            .resolve(expanse_addr::keyed_random_addr(carved, 1))
            .is_none());
        let served = s.carve116.subprefix(4, 5);
        assert!(pop
            .aliases
            .resolve(expanse_addr::keyed_random_addr(served, 1))
            .is_some());
    }

    #[test]
    fn deterministic_build() {
        let a = build_tiny();
        let b = build_tiny();
        assert_eq!(a.live_hosts(), b.live_hosts());
        assert_eq!(a.pool_size(), b.pool_size());
        assert_eq!(a.aliases.len(), b.aliases.len());
        assert_eq!(a.alias_pool, b.alias_pool);
    }

    #[test]
    fn machines_referenced_exist() {
        let pop = build_tiny();
        for h in pop.hosts.values() {
            assert!((h.machine.0 as usize) < pop.machines.len());
        }
        for (_, r) in pop.aliases.iter() {
            assert!((r.machine.0 as usize) < pop.machines.len());
        }
    }
}
