//! Sub-day availability: client uptime sessions and QUIC flapping.
//!
//! §9.3 of the paper: crowdsourced client addresses are short-lived —
//! 19 % active under an hour, 39.4 % for ≤ 8 hours, median ≈ 3 h/day for
//! dynamic addresses. §6.3: two CDN prefixes flap their QUIC service
//! day-to-day (suspected staged rollout or rate limiting).

use expanse_addr::fanout::splitmix64;

/// Seconds in a day.
pub const DAY_SECS: u64 = 86_400;

/// Map a hash to [0, 1).
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A client's uptime session for one day: `[start, start+len)` in seconds
/// since local midnight, or `None` for an offline day.
///
/// Session lengths are log-uniform between ~33 minutes and 16 hours,
/// giving median ≈ 3 h and a mean pulled toward the paper's ≈ 8 h by the
/// long tail (§9.3).
pub fn client_session(salt: u64, day: u16) -> Option<(u64, u64)> {
    let k = splitmix64(salt ^ (u64::from(day) << 32) ^ 0x5e55_1044);
    // 15 % of days a dynamic client never shows up.
    if unit(k) < 0.15 {
        return None;
    }
    let start = splitmix64(k ^ 1) % (DAY_SECS - 600);
    // Log-uniform duration: exp(U * (ln hi - ln lo) + ln lo).
    let lo = 2000.0f64; // ~33 min
    let hi: f64 = 16.0 * 3600.0;
    let u = unit(splitmix64(k ^ 2));
    let len = (lo.ln() + u * (hi.ln() - lo.ln())).exp() as u64;
    Some((start, len.min(DAY_SECS - start)))
}

/// Is a dynamic client online at `(day, secs)`?
pub fn client_online(salt: u64, day: u16, secs: u64) -> bool {
    match client_session(salt, day) {
        Some((start, len)) => secs >= start && secs < start + len,
        None => false,
    }
}

/// Does a QUIC-flaky prefix serve QUIC on `day`? (§6.3's Akamai/HDNet
/// flapping: up with probability `up_rate`, independently per day.)
pub fn quic_up(salt: u64, day: u16, up_rate: f64) -> bool {
    unit(splitmix64(salt ^ u64::from(day) ^ 0x41c4_a41a)) < up_rate
}

/// Rotation epoch of a delegated prefix on probing day `day`: the epoch
/// advances every `period` days (the delegating ISP renumbers the
/// customer, and every host inside the prefix moves to fresh addresses).
/// A zero period means "never rotates" and pins epoch 0.
pub fn rotation_epoch(day: u16, period: u16) -> u16 {
    day.checked_div(period).unwrap_or(0)
}

/// Daily jitter for ICMP-rate-limited prefixes: the number of tokens the
/// bucket starts the day with (4..=10), so the set of answered fan-out
/// branches varies day-to-day (§5.1 case 4).
pub fn rate_limit_day_tokens(salt: u64, day: u16) -> u32 {
    4 + (splitmix64(salt ^ (u64::from(day) << 16) ^ 0x7a7e) % 7) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_deterministic_and_bounded() {
        for day in 0..50u16 {
            let a = client_session(42, day);
            assert_eq!(a, client_session(42, day));
            if let Some((start, len)) = a {
                assert!(start < DAY_SECS);
                assert!(start + len <= DAY_SECS);
                assert!(len >= 1);
            }
        }
    }

    #[test]
    fn session_length_distribution() {
        let mut lens: Vec<f64> = Vec::new();
        for salt in 0..2000u64 {
            if let Some((_, len)) = client_session(salt, 3) {
                lens.push(len as f64 / 3600.0);
            }
        }
        let median = expanse_stats::median(&lens).unwrap();
        let mean = expanse_stats::mean(&lens).unwrap();
        // Paper §9.3: median ≈ 3 h, mean ≈ 8 h. Midnight truncation pulls
        // our mean below the untruncated log-uniform value; the shape
        // that matters (long tail, mean ≫ median is preserved) holds.
        assert!((1.5..=5.0).contains(&median), "median={median}");
        assert!((3.0..=9.0).contains(&mean), "mean={mean}");
        assert!(median < mean, "long tail expected");
    }

    #[test]
    fn some_days_offline() {
        let offline = (0..1000u16)
            .filter(|d| client_session(7, *d).is_none())
            .count();
        assert!((100..220).contains(&offline), "offline={offline}");
    }

    #[test]
    fn online_follows_session() {
        for day in 0..20u16 {
            if let Some((start, len)) = client_session(9, day) {
                assert!(client_online(9, day, start));
                assert!(client_online(9, day, start + len - 1));
                assert!(!client_online(9, day, start + len));
                if start > 0 {
                    assert!(!client_online(9, day, start - 1));
                }
            }
        }
    }

    #[test]
    fn quic_flap_rate() {
        let ups = (0..2000u16).filter(|d| quic_up(3, *d, 0.78)).count();
        let rate = ups as f64 / 2000.0;
        assert!((rate - 0.78).abs() < 0.04, "rate={rate}");
        // Degenerate rates.
        assert!((0..100u16).all(|d| quic_up(3, d, 1.0)));
        assert!((0..100u16).all(|d| !quic_up(3, d, 0.0)));
    }

    #[test]
    fn rotation_epochs_advance_every_period() {
        assert_eq!(rotation_epoch(0, 3), 0);
        assert_eq!(rotation_epoch(2, 3), 0);
        assert_eq!(rotation_epoch(3, 3), 1);
        assert_eq!(rotation_epoch(8, 3), 2);
        assert_eq!(rotation_epoch(9, 3), 3);
        // Degenerate period: never rotates.
        assert_eq!(rotation_epoch(500, 0), 0);
    }

    #[test]
    fn day_tokens_vary() {
        let toks: std::collections::HashSet<u32> =
            (0..50u16).map(|d| rate_limit_day_tokens(1, d)).collect();
        assert!(toks.len() > 3, "tokens should vary across days: {toks:?}");
        assert!(toks.iter().all(|t| (4..=10).contains(t)));
    }
}
