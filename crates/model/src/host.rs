//! Host profiles: the live population of the synthetic Internet.

use crate::fingerprint::MachineId;
use crate::ids::Asn;
use expanse_packet::{ProtoSet, Protocol};

/// What a live address is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostKind {
    /// HTTP(S) web server, possibly QUIC-enabled.
    WebServer,
    /// Authoritative/recursive DNS server.
    DnsServer,
    /// Server speaking several services.
    MixedServer,
    /// Backbone/transit router (RIPE-Atlas-visible).
    CoreRouter,
    /// Customer-premises router (the scamper population).
    CpeRouter,
    /// End-user client (Bitnodes / crowdsourcing).
    Client,
}

impl HostKind {
    /// The default protocol stack for the kind (before firewall policy).
    pub fn default_protos(self, quic: bool) -> ProtoSet {
        match self {
            HostKind::WebServer => {
                let base = ProtoSet::only(Protocol::Icmp)
                    .with(Protocol::Tcp80)
                    .with(Protocol::Tcp443);
                if quic {
                    base.with(Protocol::Udp443)
                } else {
                    base
                }
            }
            HostKind::DnsServer => ProtoSet::only(Protocol::Icmp).with(Protocol::Udp53),
            HostKind::MixedServer => ProtoSet::only(Protocol::Icmp)
                .with(Protocol::Tcp80)
                .with(Protocol::Tcp443)
                .with(Protocol::Udp53),
            HostKind::CoreRouter | HostKind::CpeRouter => ProtoSet::only(Protocol::Icmp),
            HostKind::Client => ProtoSet::only(Protocol::Icmp),
        }
    }
}

/// Longitudinal stability class (Fig 8 of the paper: servers decay by a
/// few percent over 14 days, CPE routers lose 32 %, clients churn fast).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StabilityClass {
    /// Never goes away (anchors, e.g. RIPE-Atlas-like probes).
    Permanent,
    /// Server-grade stability.
    Server,
    /// CPE-grade churn.
    Cpe,
    /// Client-grade churn (plus privacy-extension address cycling).
    Client,
}

/// One live address.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostProfile {
    /// Origin AS number.
    pub asn: Asn,
    /// What kind of host this address is.
    pub kind: HostKind,
    /// Protocols this address answers (after firewall policy).
    pub protos: ProtoSet,
    /// The machine terminating this address (shared for multi-address
    /// machines).
    pub machine: MachineId,
    /// Longitudinal stability class.
    pub stability: StabilityClass,
    /// First probing day this address exists (0 = since before the scan).
    pub spawn_day: u16,
    /// First probing day this address is gone (u16::MAX = never dies).
    pub death_day: u16,
}

impl HostProfile {
    /// Is the address alive on probing day `day`?
    pub fn online(&self, day: u16) -> bool {
        self.spawn_day <= day && day < self.death_day
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_protocol_stacks() {
        assert!(HostKind::WebServer
            .default_protos(true)
            .contains(Protocol::Udp443));
        assert!(!HostKind::WebServer
            .default_protos(false)
            .contains(Protocol::Udp443));
        assert!(HostKind::DnsServer
            .default_protos(false)
            .contains(Protocol::Udp53));
        assert_eq!(HostKind::CpeRouter.default_protos(true).len(), 1);
    }

    #[test]
    fn online_window() {
        let h = HostProfile {
            asn: Asn(1),
            kind: HostKind::WebServer,
            protos: ProtoSet::ALL,
            machine: MachineId(0),
            stability: StabilityClass::Server,
            spawn_day: 2,
            death_day: 5,
        };
        assert!(!h.online(1));
        assert!(h.online(2));
        assert!(h.online(4));
        assert!(!h.online(5));
    }
}
