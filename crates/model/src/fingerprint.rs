//! Machine fingerprints: what §5.4 of the paper measures.
//!
//! Every responding address is backed by a *machine*. A machine has one
//! TCP/IP personality — initial TTL, MSS, window size/scale, option
//! layout, and timestamp behaviour. Aliased prefixes map entire address
//! ranges to one machine, which is exactly what the paper's consistency
//! tests detect. A small fraction of machines carry a *pathology* that
//! makes one field time-variant (the CDN TCP-proxy cases behind Table 5's
//! inconsistent counts).

use expanse_addr::fanout::splitmix64;
use expanse_packet::{TcpFlags, TcpOption, TcpSegment};

/// Index into the model's machine table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MachineId(pub u32);

/// TCP timestamp option behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TsBehavior {
    /// No timestamp option in replies.
    None,
    /// One global monotonic counter for the whole machine (pre-4.10
    /// Linux, BSDs): the strongest aliasing signal (§5.4: R² test).
    GlobalMonotonic {
        /// Counter frequency in Hz.
        rate_hz: u32,
        /// Counter value at simulation epoch.
        offset: u32,
    },
    /// Monotonic rate but with a random offset per `<SRC-IP, DST-IP>`
    /// tuple (Linux ≥ 4.10) — defeats the same-counter test by design.
    PerTupleRandom {
        /// Counter frequency in Hz.
        rate_hz: u32,
    },
    /// Fully random per reply (middlebox pathologies).
    RandomEach,
}

/// Which options a SYN-ACK carries, in wire order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLayout {
    /// `MSS-SACK-TS-N-WS` — 99.5 % of responsive hosts in the paper.
    Standard,
    /// `MSS-SACK-N-WS` (timestamps disabled).
    NoTimestamps,
    /// `MSS-N-WS-TS` (SACK disabled, reordered as some stacks do).
    NoSack,
    /// `MSS` only (minimal embedded stacks).
    MssOnly,
}

/// A time-variant defect in one fingerprint dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pathology {
    /// None.
    None,
    /// Alternates initial TTL between 64 and 255 (the paper found 22 such
    /// hosts answering "in direct order" with differing iTTL).
    FlakyIttl,
    /// Oscillates the option layout.
    FlakyOptions,
    /// Oscillates the window-scale value.
    FlakyWscale,
    /// Oscillates the MSS value.
    FlakyMss,
    /// Oscillates the window size.
    FlakyWsize,
}

/// One machine's TCP/IP personality.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Initial TTL of replies.
    pub ittl: u8,
    /// Maximum segment size option value.
    pub mss: u16,
    /// Window-scale option value.
    pub wscale: u8,
    /// TCP window size.
    pub wsize: u16,
    /// Option layout of SYN-ACKs.
    pub layout: OptLayout,
    /// Timestamp option behaviour.
    pub ts: TsBehavior,
    /// Fingerprint pathology, if any.
    pub pathology: Pathology,
    /// Per-machine salt for tuple-keyed randomness.
    pub salt: u64,
}

impl Machine {
    /// A plain Linux-server-like personality.
    pub fn linux_like(salt: u64) -> Machine {
        Machine {
            ittl: 64,
            mss: 1440,
            wscale: 7,
            wsize: 64240,
            layout: OptLayout::Standard,
            ts: TsBehavior::PerTupleRandom { rate_hz: 1000 },
            pathology: Pathology::None,
            salt,
        }
    }

    /// Timestamp value at absolute time `abs_ns` for a flow identified by
    /// `tuple_key` (hash of src/dst addresses).
    pub fn tsval(&self, abs_ns: u64, tuple_key: u64) -> Option<u32> {
        match self.ts {
            TsBehavior::None => None,
            TsBehavior::GlobalMonotonic { rate_hz, offset } => {
                let ticks = abs_ns / 1_000_000_000 * u64::from(rate_hz)
                    + abs_ns % 1_000_000_000 * u64::from(rate_hz) / 1_000_000_000;
                Some(offset.wrapping_add(ticks as u32))
            }
            TsBehavior::PerTupleRandom { rate_hz } => {
                let ticks = abs_ns / 1_000_000_000 * u64::from(rate_hz)
                    + abs_ns % 1_000_000_000 * u64::from(rate_hz) / 1_000_000_000;
                let offset = splitmix64(self.salt ^ tuple_key) as u32;
                Some(offset.wrapping_add(ticks as u32))
            }
            TsBehavior::RandomEach => Some(splitmix64(self.salt ^ tuple_key ^ abs_ns) as u32),
        }
    }

    /// Effective fingerprint fields after applying the pathology for a
    /// reply keyed by `flavor_key` (varies per probe for flaky machines).
    fn effective(&self, flavor_key: u64) -> (u8, u16, u8, u16, OptLayout) {
        let flip = splitmix64(self.salt ^ flavor_key) & 1 == 1;
        let mut ittl = self.ittl;
        let mut mss = self.mss;
        let mut wscale = self.wscale;
        let mut wsize = self.wsize;
        let mut layout = self.layout;
        match self.pathology {
            Pathology::None => {}
            Pathology::FlakyIttl => {
                if flip {
                    ittl = if self.ittl == 255 { 64 } else { 255 };
                }
            }
            Pathology::FlakyOptions => {
                if flip {
                    layout = OptLayout::NoTimestamps;
                }
            }
            Pathology::FlakyWscale => {
                if flip {
                    wscale = self.wscale.wrapping_add(1) & 0x0f;
                }
            }
            Pathology::FlakyMss => {
                if flip {
                    mss = self.mss.wrapping_sub(20);
                }
            }
            Pathology::FlakyWsize => {
                wsize = self
                    .wsize
                    .wrapping_add((splitmix64(flavor_key ^ 0x55) % 4096) as u16);
            }
        }
        (ittl, mss, wscale, wsize, layout)
    }

    /// Build the SYN-ACK for `probe`.
    ///
    /// * `abs_ns` — absolute virtual time (for timestamps)
    /// * `tuple_key` — hash of the 〈src, dst〉 address pair
    /// * `flavor_key` — per-probe key (drives pathologies)
    pub fn syn_ack(
        &self,
        probe: &TcpSegment,
        abs_ns: u64,
        tuple_key: u64,
        flavor_key: u64,
    ) -> TcpSegment {
        let (_, mss, wscale, wsize, layout) = self.effective(flavor_key);
        let mut options = Vec::new();
        let ts = self
            .tsval(abs_ns, tuple_key)
            .map(|tsval| TcpOption::Timestamps {
                tsval,
                tsecr: probe.timestamps().map_or(0, |(v, _)| v),
            });
        match layout {
            OptLayout::Standard => {
                options.push(TcpOption::Mss(mss));
                options.push(TcpOption::SackPermitted);
                if let Some(t) = ts {
                    options.push(t);
                }
                options.push(TcpOption::Nop);
                options.push(TcpOption::WindowScale(wscale));
            }
            OptLayout::NoTimestamps => {
                options.push(TcpOption::Mss(mss));
                options.push(TcpOption::SackPermitted);
                options.push(TcpOption::Nop);
                options.push(TcpOption::WindowScale(wscale));
            }
            OptLayout::NoSack => {
                options.push(TcpOption::Mss(mss));
                options.push(TcpOption::Nop);
                options.push(TcpOption::WindowScale(wscale));
                if let Some(t) = ts {
                    options.push(t);
                }
            }
            OptLayout::MssOnly => options.push(TcpOption::Mss(mss)),
        }
        TcpSegment {
            src_port: probe.dst_port,
            dst_port: probe.src_port,
            seq: splitmix64(self.salt ^ tuple_key ^ abs_ns) as u32,
            ack: probe.seq.wrapping_add(1),
            flags: TcpFlags::SYN_ACK,
            window: wsize,
            urgent: 0,
            options,
            payload: Vec::new(),
        }
    }

    /// The initial TTL a reply leaves the machine with (pathology-aware).
    pub fn reply_ittl(&self, flavor_key: u64) -> u8 {
        self.effective(flavor_key).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syn_ack_echoes_probe() {
        let m = Machine::linux_like(1);
        let probe = TcpSegment::syn_with_options(40000, 80, 12345, 777);
        let reply = m.syn_ack(&probe, 0, 9, 9);
        assert_eq!(reply.src_port, 80);
        assert_eq!(reply.dst_port, 40000);
        assert_eq!(reply.ack, 12346);
        assert!(reply.flags.contains(TcpFlags::SYN_ACK));
        assert_eq!(reply.options_text(), "MSS-SACK-TS-N-WS");
        // tsecr echoes our tsval.
        assert_eq!(reply.timestamps().unwrap().1, 777);
    }

    #[test]
    fn global_monotonic_counter_is_shared_and_linear() {
        let m = Machine {
            ts: TsBehavior::GlobalMonotonic {
                rate_hz: 1000,
                offset: 5,
            },
            ..Machine::linux_like(2)
        };
        // Two different tuples see the SAME counter.
        let a = m.tsval(1_000_000_000, 111).unwrap();
        let b = m.tsval(1_000_000_000, 222).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, 1005);
        // Linear in time.
        assert_eq!(m.tsval(2_000_000_000, 111).unwrap(), 2005);
    }

    #[test]
    fn per_tuple_random_differs_across_tuples() {
        let m = Machine::linux_like(3);
        let a = m.tsval(0, 111).unwrap();
        let b = m.tsval(0, 222).unwrap();
        assert_ne!(a, b, "per-tuple offsets must differ");
        // But monotonic within a tuple.
        assert!(m.tsval(5_000_000_000, 111).unwrap() > a);
    }

    #[test]
    fn pathology_flaky_ittl_alternates() {
        let m = Machine {
            pathology: Pathology::FlakyIttl,
            ..Machine::linux_like(4)
        };
        let vals: std::collections::HashSet<u8> = (0..32u64).map(|k| m.reply_ittl(k)).collect();
        assert_eq!(vals, [64u8, 255].into_iter().collect());
        // Healthy machine never flips.
        let healthy = Machine::linux_like(4);
        assert!((0..32u64).all(|k| healthy.reply_ittl(k) == 64));
    }

    #[test]
    fn pathology_flaky_options_changes_text() {
        let m = Machine {
            pathology: Pathology::FlakyOptions,
            ..Machine::linux_like(5)
        };
        let probe = TcpSegment::syn_with_options(1, 80, 1, 1);
        let texts: std::collections::HashSet<String> = (0..32u64)
            .map(|k| m.syn_ack(&probe, 0, 0, k).options_text())
            .collect();
        assert_eq!(texts.len(), 2, "{texts:?}");
    }

    #[test]
    fn mss_only_layout() {
        let m = Machine {
            layout: OptLayout::MssOnly,
            ..Machine::linux_like(6)
        };
        let probe = TcpSegment::syn(1, 80, 1);
        assert_eq!(m.syn_ack(&probe, 0, 0, 0).options_text(), "MSS");
    }

    #[test]
    fn no_timestamp_behavior() {
        let m = Machine {
            ts: TsBehavior::None,
            ..Machine::linux_like(7)
        };
        assert_eq!(m.tsval(123, 1), None);
        let probe = TcpSegment::syn(1, 80, 1);
        assert_eq!(m.syn_ack(&probe, 0, 0, 0).options_text(), "MSS-SACK-N-WS");
    }
}
