//! Model configuration: every knob of the synthetic Internet.
//!
//! The defaults target the paper's *proportions* at roughly 1:100 of its
//! absolute scale (≈550 k hitlist addresses instead of 55.1 M). Tests use
//! [`ModelConfig::tiny`]; the experiment harness uses
//! [`ModelConfig::default`] (or `paper_scale(f)` for sweeps).

use serde::{Deserialize, Serialize};

/// Knobs for the adversarial periphery scenarios (rotating delegated
/// prefixes, RFC 4941 privacy churn, throttled last-hop routers, and
/// periphery alias fabrics — see `crate::scenario`).
///
/// The default is **all zeros**: every behaviour disabled, which leaves
/// the model byte-identical to a scenario-free build. Tests and the
/// `bench-scenarios` experiment opt in via [`ModelConfig::adversarial`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Delegated /56s that re-number all their hosts every rotation
    /// period (residential prefix rotation).
    pub rotating_56s: usize,
    /// Days between renumber events of a rotating /56.
    pub rotation_period_days: u16,
    /// Live hosts inside each rotating /56 per epoch.
    pub rotation_hosts: usize,
    /// Hosts with RFC 4941 privacy extensions: the temporary IID
    /// regenerates daily while a stable EUI-64 service address persists.
    pub privacy_hosts: usize,
    /// Periphery alias fabrics: whole /64s answering on every probed
    /// address (CPE in promiscuous ndproxy/bridge configurations).
    pub fabric_64s: usize,
    /// Last-hop routers whose ICMPv6 responses sit behind a per-router
    /// token bucket.
    pub throttled_routers: usize,
    /// Token-bucket capacity of a throttled router (tokens).
    pub throttle_capacity: f64,
    /// Token-bucket refill rate of a throttled router (tokens/second).
    pub throttle_refill_per_sec: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            rotating_56s: 0,
            rotation_period_days: 0,
            rotation_hosts: 0,
            privacy_hosts: 0,
            fabric_64s: 0,
            throttled_routers: 0,
            throttle_capacity: 0.0,
            throttle_refill_per_sec: 0.0,
        }
    }
}

impl ScenarioConfig {
    /// Is any adversarial behaviour switched on?
    pub fn enabled(&self) -> bool {
        self.rotating_56s > 0
            || self.privacy_hosts > 0
            || self.fabric_64s > 0
            || self.throttled_routers > 0
    }
}

/// Top-level configuration for [`crate::InternetModel`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Master seed; all randomness derives from it.
    pub seed: u64,

    // ---- topology ----------------------------------------------------
    /// Number of autonomous systems.
    pub n_as: usize,
    /// Mean announced prefixes per AS (skewed: a few ASes announce many).
    pub mean_prefixes_per_as: f64,

    // ---- population ---------------------------------------------------
    /// Target number of *live* (responsive) hosts across all networks.
    pub n_live_hosts: usize,
    /// Ratio of ghost (known-but-unresponsive) to live addresses in
    /// the address pools sources sample from. The paper observes only
    /// ≈6.5 % of non-aliased hitlist addresses responding (§6.1), i.e.
    /// ≈14 ghosts per live host.
    pub ghost_ratio: f64,

    // ---- aliasing (§5) -------------------------------------------------
    /// Fraction of announced prefixes that contain an aliased region.
    /// Paper: 1.5 % of prefixes are aliased.
    pub aliased_prefix_fraction: f64,
    /// Number of Amazon-like aliased /48s under the dominant CDN AS
    /// (the "hook" of Fig 5b; 189 in the paper).
    pub cdn_aliased_48s: usize,
    /// Fraction of the hitlist address volume that the sources draw from
    /// inside aliased prefixes. Paper: 46.6 % of addresses fall away when
    /// aliased prefixes are filtered.
    pub aliased_addr_share: f64,
    /// Fraction of aliased machines with a fingerprint pathology
    /// (time-variant option values; Table 5 finds ≈5.7 % inconsistent).
    pub alias_pathology_rate: f64,

    // ---- network weather ------------------------------------------------
    /// Base per-packet loss probability on clean paths.
    pub base_loss: f64,
    /// Fraction of prefixes with high-loss paths (candidates for the
    /// sliding-window rescue of §5.2).
    pub lossy_prefix_fraction: f64,
    /// Loss probability within high-loss prefixes.
    pub lossy_prefix_loss: f64,
    /// Number of ICMP-rate-limited /120 prefixes (§5.1 case 4: six
    /// neighbouring /120s flapping).
    pub rate_limited_120s: usize,
    /// Number of SYN-proxy-protected /80 prefixes (§5.1 case).
    pub syn_proxy_80s: usize,

    // ---- longitudinal behaviour (Fig 8) ---------------------------------
    /// Daily survival probability of server addresses (DL/FDNS/CT/AXFR).
    pub server_daily_survival: f64,
    /// Daily survival probability of CPE/scamper router addresses.
    pub cpe_daily_survival: f64,
    /// Daily survival probability of client addresses (Bitnodes).
    pub client_daily_survival: f64,
    /// Probability a QUIC-flaky prefix answers QUIC on a given day
    /// (the Akamai/HDNet flapping of §6.3).
    pub quic_flap_up_rate: f64,

    // ---- simulated days --------------------------------------------------
    /// Length of the source runup history (Fig 1a), in days.
    pub runup_days: u32,

    // ---- adversarial periphery scenarios ---------------------------------
    /// Scenario knobs; all-zero (the default) disables the layer
    /// entirely and keeps legacy builds byte-identical.
    pub scenario: ScenarioConfig,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            seed: 0x6a5c_e227_53d1_90bb,
            n_as: 1000,
            mean_prefixes_per_as: 4.0,
            n_live_hosts: 40_000,
            ghost_ratio: 9.0,
            aliased_prefix_fraction: 0.015,
            cdn_aliased_48s: 189,
            aliased_addr_share: 0.466,
            alias_pathology_rate: 0.057,
            base_loss: 0.01,
            lossy_prefix_fraction: 0.01,
            lossy_prefix_loss: 0.35,
            rate_limited_120s: 6,
            syn_proxy_80s: 1,
            server_daily_survival: 0.9985,
            cpe_daily_survival: 0.973,
            client_daily_survival: 0.984,
            quic_flap_up_rate: 0.78,
            runup_days: 280,
            scenario: ScenarioConfig::default(),
        }
    }
}

impl ModelConfig {
    /// A small configuration for unit/integration tests: builds in
    /// milliseconds, still exhibits every phenomenon (aliasing, schemes,
    /// churn, rate limiting).
    pub fn tiny(seed: u64) -> Self {
        ModelConfig {
            seed,
            n_as: 60,
            mean_prefixes_per_as: 2.5,
            n_live_hosts: 2_500,
            ghost_ratio: 4.0,
            cdn_aliased_48s: 12,
            // Few alias machines exist at tiny scale; a higher pathology
            // rate keeps Table 5's inconsistency mechanics observable.
            alias_pathology_rate: 0.25,
            rate_limited_120s: 2,
            syn_proxy_80s: 1,
            runup_days: 30,
            ..ModelConfig::default()
        }
    }

    /// The tiny configuration with every adversarial periphery behaviour
    /// switched on: rotating delegated /56s, daily privacy-address
    /// churn, periphery alias fabrics, and throttled last-hop routers.
    /// This is what `bench-scenarios` and the stress tests build.
    pub fn adversarial(seed: u64) -> Self {
        ModelConfig {
            scenario: ScenarioConfig {
                rotating_56s: 3,
                rotation_period_days: 3,
                rotation_hosts: 12,
                privacy_hosts: 24,
                fabric_64s: 4,
                throttled_routers: 3,
                throttle_capacity: 6.0,
                throttle_refill_per_sec: 0.02,
            },
            ..ModelConfig::tiny(seed)
        }
    }

    /// Scale population counts by `f` relative to the defaults.
    pub fn paper_scale(f: f64) -> Self {
        let base = ModelConfig::default();
        ModelConfig {
            n_as: ((base.n_as as f64) * f).max(20.0) as usize,
            n_live_hosts: ((base.n_live_hosts as f64) * f).max(500.0) as usize,
            cdn_aliased_48s: ((base.cdn_aliased_48s as f64) * f).max(4.0) as usize,
            ..base
        }
    }

    /// Sanity-check invariants; called by the builder.
    ///
    /// # Panics
    /// Panics on out-of-range probabilities or empty populations.
    pub fn validate(&self) {
        for (name, p) in [
            ("aliased_prefix_fraction", self.aliased_prefix_fraction),
            ("aliased_addr_share", self.aliased_addr_share),
            ("alias_pathology_rate", self.alias_pathology_rate),
            ("base_loss", self.base_loss),
            ("lossy_prefix_fraction", self.lossy_prefix_fraction),
            ("lossy_prefix_loss", self.lossy_prefix_loss),
            ("server_daily_survival", self.server_daily_survival),
            ("cpe_daily_survival", self.cpe_daily_survival),
            ("client_daily_survival", self.client_daily_survival),
            ("quic_flap_up_rate", self.quic_flap_up_rate),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} = {p} out of [0,1]");
        }
        assert!(self.n_as >= 10, "need at least 10 ASes");
        assert!(self.n_live_hosts >= 100, "need at least 100 live hosts");
        assert!(self.ghost_ratio >= 0.0, "ghost_ratio must be non-negative");
        assert!(self.runup_days >= 14, "need at least 14 days of history");
        if self.scenario.rotating_56s > 0 {
            assert!(
                self.scenario.rotation_period_days >= 1,
                "rotating prefixes need a rotation period of at least one day"
            );
            assert!(
                self.scenario.rotation_hosts >= 1,
                "rotating prefixes need at least one host per epoch"
            );
        }
        if self.scenario.throttled_routers > 0 {
            assert!(
                self.scenario.throttle_capacity > 0.0,
                "throttled routers need a positive bucket capacity"
            );
            assert!(
                self.scenario.throttle_refill_per_sec > 0.0,
                "throttled routers need a positive refill rate"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ModelConfig::default().validate();
        ModelConfig::tiny(1).validate();
        ModelConfig::paper_scale(0.5).validate();
        ModelConfig::adversarial(1).validate();
    }

    #[test]
    fn scenario_default_is_disabled() {
        assert!(!ScenarioConfig::default().enabled());
        assert!(!ModelConfig::tiny(1).scenario.enabled());
        assert!(ModelConfig::adversarial(1).scenario.enabled());
    }

    #[test]
    #[should_panic(expected = "rotation period")]
    fn rotation_without_period_caught() {
        let cfg = ModelConfig {
            scenario: ScenarioConfig {
                rotating_56s: 2,
                rotation_hosts: 4,
                ..ScenarioConfig::default()
            },
            ..ModelConfig::tiny(1)
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "bucket capacity")]
    fn throttle_without_capacity_caught() {
        let cfg = ModelConfig {
            scenario: ScenarioConfig {
                throttled_routers: 1,
                ..ScenarioConfig::default()
            },
            ..ModelConfig::tiny(1)
        };
        cfg.validate();
    }

    #[test]
    fn tiny_is_small() {
        let t = ModelConfig::tiny(0);
        assert!(t.n_live_hosts < 10_000);
        assert!(t.n_as < 100);
    }

    #[test]
    fn paper_scale_floors() {
        let s = ModelConfig::paper_scale(0.0001);
        s.validate();
        assert!(s.n_as >= 20);
        assert!(s.n_live_hosts >= 500);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn bad_probability_caught() {
        let cfg = ModelConfig {
            base_loss: 1.5,
            ..ModelConfig::default()
        };
        cfg.validate();
    }

    #[test]
    fn distinct_seeds_distinct_configs() {
        let a = ModelConfig::tiny(1);
        let b = ModelConfig::tiny(2);
        assert_ne!(a.seed, b.seed);
        // Everything else identical.
        assert_eq!(a.n_as, b.n_as);
    }
}
