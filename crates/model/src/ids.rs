//! Autonomous systems and organization categories.

use std::fmt;

/// An AS number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Coarse organization category; drives addressing scheme mix, host kinds,
/// firewall policy, and which sources see the AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AsCategory {
    /// Content delivery networks (Amazon/Cloudflare/Incapsula-likes):
    /// dominate DNS-derived sources, home of the aliased /48 "hook".
    Cdn,
    /// Hosting / cloud providers (Hetzner/OVH-likes): dense server pools,
    /// counter-style addressing.
    Hoster,
    /// Eyeball ISPs (Comcast/DTAG-likes): CPE routers, SLAAC clients.
    IspEyeball,
    /// Transit / backbone networks: core routers seen by RIPE Atlas.
    Transit,
    /// Universities / NRENs: structured addressing, moderate populations.
    Academic,
    /// Everything else: small enterprise networks.
    Enterprise,
}

impl AsCategory {
    /// All categories.
    pub const ALL: [AsCategory; 6] = [
        AsCategory::Cdn,
        AsCategory::Hoster,
        AsCategory::IspEyeball,
        AsCategory::Transit,
        AsCategory::Academic,
        AsCategory::Enterprise,
    ];

    /// Share of ASes in each category (sums to 1). CDNs are few but huge;
    /// enterprises are many but tiny — mirroring the concentration the
    /// paper reports per source (Table 2).
    pub fn population_share(self) -> f64 {
        match self {
            AsCategory::Cdn => 0.01,
            AsCategory::Hoster => 0.15,
            AsCategory::IspEyeball => 0.25,
            AsCategory::Transit => 0.09,
            AsCategory::Academic => 0.10,
            AsCategory::Enterprise => 0.40,
        }
    }

    /// Short tag for synthetic org names.
    pub fn tag(self) -> &'static str {
        match self {
            AsCategory::Cdn => "cdn",
            AsCategory::Hoster => "host",
            AsCategory::IspEyeball => "isp",
            AsCategory::Transit => "transit",
            AsCategory::Academic => "edu",
            AsCategory::Enterprise => "corp",
        }
    }
}

/// One autonomous system in the model.
#[derive(Debug, Clone)]
pub struct AsInfo {
    /// Origin AS number.
    pub asn: Asn,
    /// Synthetic organization name.
    pub name: String,
    /// Organization category.
    pub category: AsCategory,
}

impl AsInfo {
    /// Create a new instance.
    pub fn new(asn: Asn, category: AsCategory, ordinal: usize) -> Self {
        AsInfo {
            asn,
            name: format!("{}-{:04}", category.tag(), ordinal),
            category,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let total: f64 = AsCategory::ALL.iter().map(|c| c.population_share()).sum();
        assert!((total - 1.0).abs() < 1e-12, "total={total}");
    }

    #[test]
    fn display_and_names() {
        assert_eq!(Asn(64500).to_string(), "AS64500");
        let info = AsInfo::new(Asn(1), AsCategory::Cdn, 3);
        assert_eq!(info.name, "cdn-0003");
    }

    #[test]
    fn categories_distinct() {
        let mut tags: Vec<&str> = AsCategory::ALL.iter().map(|c| c.tag()).collect();
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), 6);
    }
}
