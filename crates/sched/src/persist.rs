//! Snapshot persistence for the probe scheduler.
//!
//! The scheduler's long-lived state is the per-/48 feedback map (the
//! daily plan is derived from it on demand) plus two scalars that let
//! journal-loaded replicas answer "remaining budget" questions without
//! re-planning: the budget the last plan was drawn against and the
//! slots it allocated. Entries are written in sorted order so the byte
//! stream never depends on anything but the state itself, and deltas
//! carry only the entries touched since the last sync point — the same
//! upsert framing the APD window map uses.

use crate::{PrefixEntry, Scheduler, NEVER_SCANNED, SCHED_PREFIX_LEN};
use expanse_addr::codec::{self, CodecError, Decoder, Encoder};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};

/// Write one entry's feedback state (everything but the prefix key).
fn write_entry<W: Write>(enc: &mut Encoder<W>, e: &PrefixEntry) -> Result<(), CodecError> {
    enc.put_u64(e.spent)?;
    enc.put_u64(e.found)?;
    enc.put_u16(e.last_scanned)?;
    enc.put_u8(u8::from(e.aliased) | (u8::from(e.suspect) << 1))
}

/// Decode one entry written by [`write_entry`].
fn read_entry<R: Read>(dec: &mut Decoder<R>) -> Result<PrefixEntry, CodecError> {
    let spent = dec.get_u64()?;
    let found = dec.get_u64()?;
    let last_scanned = dec.get_u16()?;
    let flags = dec.get_u8()?;
    if flags > 0b11 {
        return Err(CodecError::Corrupt("scheduler entry flags out of range"));
    }
    Ok(PrefixEntry {
        spent,
        found,
        last_scanned,
        aliased: flags & 1 != 0,
        suspect: flags & 2 != 0,
    })
}

/// Decode a sorted run of `(prefix, entry)` pairs, enforcing the /48
/// key invariant and strict ascending order.
fn read_entries<R: Read>(
    dec: &mut Decoder<R>,
    n: usize,
) -> Result<BTreeMap<expanse_addr::Prefix, PrefixEntry>, CodecError> {
    let mut entries = BTreeMap::new();
    let mut prev = None;
    for _ in 0..n {
        let p = codec::read_prefix(dec)?;
        if p.len() != SCHED_PREFIX_LEN {
            return Err(CodecError::Corrupt("scheduler entry key is not a /48"));
        }
        if prev.is_some_and(|q| q >= p) {
            return Err(CodecError::Corrupt(
                "scheduler entry prefixes not strictly sorted",
            ));
        }
        prev = Some(p);
        let e = read_entry(dec)?;
        if e.last_scanned != NEVER_SCANNED && e.spent == 0 && e.found > 0 {
            return Err(CodecError::Corrupt(
                "scheduler entry credits finds to zero spend",
            ));
        }
        entries.insert(p, e);
    }
    Ok(entries)
}

impl Scheduler {
    /// Serialize the scheduler's feedback state into an open snapshot
    /// envelope.
    pub fn encode<W: Write>(&self, enc: &mut Encoder<W>) -> Result<(), CodecError> {
        enc.put_u64(self.last_budget)?;
        enc.put_u64(self.last_used)?;
        enc.put_len(self.entries.len())?;
        for (p, e) in &self.entries {
            codec::write_prefix(enc, *p)?;
            write_entry(enc, e)?;
        }
        Ok(())
    }

    /// Rebuild a scheduler from [`Scheduler::encode`] output. The
    /// [`crate::SchedConfig`] is not part of the snapshot — it comes
    /// back from the pipeline configuration, like every other knob.
    pub fn decode<R: Read>(dec: &mut Decoder<R>) -> Result<Scheduler, CodecError> {
        let last_budget = dec.get_u64()?;
        let last_used = dec.get_u64()?;
        let n = dec.get_len()?;
        let entries = read_entries(dec, n)?;
        Ok(Scheduler {
            entries,
            // A freshly decoded snapshot is by definition a sync point.
            dirty: BTreeSet::new(),
            last_budget,
            last_used,
        })
    }

    /// Declare the current state a journal sync point: the next
    /// [`Scheduler::encode_delta`] is relative to exactly this state.
    pub fn mark_synced(&mut self) {
        self.dirty.clear();
    }

    /// Entries whose feedback state changed since the last sync point.
    pub fn delta_prefixes(&self) -> usize {
        self.dirty.len()
    }

    /// Serialize the scalars plus every entry touched since the last
    /// sync point into an open delta frame. Entries are never removed,
    /// so rewriting the touched ones (sorted, full state each — an
    /// entry is 19 payload bytes) is the complete difference.
    pub fn encode_delta<W: Write>(&self, enc: &mut Encoder<W>) -> Result<(), CodecError> {
        enc.put_u64(self.last_budget)?;
        enc.put_u64(self.last_used)?;
        enc.put_len(self.dirty.len())?;
        for p in &self.dirty {
            let Some(e) = self.entries.get(p) else {
                return Err(CodecError::Corrupt("dirty prefix lost its entry state"));
            };
            codec::write_prefix(enc, *p)?;
            write_entry(enc, e)?;
        }
        Ok(())
    }

    /// Apply a delta written by [`Scheduler::encode_delta`]: adopt the
    /// scalars and upsert each carried entry. Afterwards this state
    /// *is* the new sync point.
    pub fn apply_delta<R: Read>(&mut self, dec: &mut Decoder<R>) -> Result<(), CodecError> {
        let last_budget = dec.get_u64()?;
        let last_used = dec.get_u64()?;
        let n = dec.get_len()?;
        let upserts = read_entries(dec, n)?;
        self.last_budget = last_budget;
        self.last_used = last_used;
        self.entries.extend(upserts);
        self.mark_synced();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expanse_addr::codec::{Decoder, Encoder};
    use expanse_addr::Prefix;

    fn p48(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Scheduler state as one full envelope, for round-trip replicas.
    fn full_roundtrip(s: &Scheduler) -> Scheduler {
        let mut buf = Vec::new();
        let mut enc = Encoder::new(&mut buf, b"SCHSTEST", 1).unwrap();
        s.encode(&mut enc).unwrap();
        enc.finish().unwrap();
        let mut dec = Decoder::new(buf.as_slice(), b"SCHSTEST", 1).unwrap();
        let back = Scheduler::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        back
    }

    #[test]
    fn roundtrip_preserves_entries_and_scalars() {
        let mut s = Scheduler::new();
        s.record_day(3, &[(p48("2001:db8:1::/48"), 100, 40)]);
        s.record_day(4, &[(p48("2001:db8:2::/48"), 50, 0)]);
        s.entries.get_mut(&p48("2001:db8:1::/48")).unwrap().aliased = true;
        s.entries.get_mut(&p48("2001:db8:2::/48")).unwrap().suspect = true;
        s.last_budget = 500;
        s.last_used = 150;

        let back = full_roundtrip(&s);
        assert_eq!(back.entries, s.entries);
        assert_eq!(back.last_budget, 500);
        assert_eq!(back.last_used, 150);
        assert_eq!(back.delta_prefixes(), 0, "decode lands at a sync point");
    }

    #[test]
    fn delta_upserts_only_touched_entries() {
        let mut s = Scheduler::new();
        let p1 = p48("2001:db8:1::/48");
        let p2 = p48("2001:db8:2::/48");
        let p3 = p48("2001:db8:3::/48");
        s.record_day(1, &[(p1, 10, 2), (p2, 20, 5)]);
        s.mark_synced();
        let mut replica = full_roundtrip(&s);

        // One existing entry advances, one brand-new prefix appears;
        // p2 is untouched and must not be in the delta.
        s.record_day(2, &[(p1, 5, 1), (p3, 30, 9)]);
        s.last_budget = 64;
        s.last_used = 35;
        assert_eq!(s.delta_prefixes(), 2);

        let mut delta = Vec::new();
        let mut enc = Encoder::new(&mut delta, b"SCHDTEST", 1).unwrap();
        s.encode_delta(&mut enc).unwrap();
        enc.finish().unwrap();
        let mut dec = Decoder::new(delta.as_slice(), b"SCHDTEST", 1).unwrap();
        replica.apply_delta(&mut dec).unwrap();
        dec.finish().unwrap();

        assert_eq!(replica.entries, s.entries);
        assert_eq!(replica.last_budget, 64);
        assert_eq!(replica.last_used, 35);
        assert_eq!(replica.delta_prefixes(), 0, "apply ends at a sync point");
    }

    #[test]
    fn unsorted_and_non_48_keys_rejected() {
        // Two entries out of order.
        let mut buf = Vec::new();
        let mut enc = Encoder::new(&mut buf, b"SCHSTEST", 1).unwrap();
        enc.put_u64(0).unwrap();
        enc.put_u64(0).unwrap();
        enc.put_len(2).unwrap();
        for p in ["2001:db8:2::/48", "2001:db8:1::/48"] {
            codec::write_prefix(&mut enc, p.parse().unwrap()).unwrap();
            enc.put_u64(0).unwrap();
            enc.put_u64(0).unwrap();
            enc.put_u16(NEVER_SCANNED).unwrap();
            enc.put_u8(0).unwrap();
        }
        enc.finish().unwrap();
        let mut dec = Decoder::new(buf.as_slice(), b"SCHSTEST", 1).unwrap();
        assert!(matches!(
            Scheduler::decode(&mut dec),
            Err(CodecError::Corrupt(
                "scheduler entry prefixes not strictly sorted"
            ))
        ));

        // A /64 key: the scheduler is /48-granular by contract.
        let mut buf = Vec::new();
        let mut enc = Encoder::new(&mut buf, b"SCHSTEST", 1).unwrap();
        enc.put_u64(0).unwrap();
        enc.put_u64(0).unwrap();
        enc.put_len(1).unwrap();
        codec::write_prefix(&mut enc, "2001:db8::/64".parse().unwrap()).unwrap();
        enc.put_u64(0).unwrap();
        enc.put_u64(0).unwrap();
        enc.put_u16(NEVER_SCANNED).unwrap();
        enc.put_u8(0).unwrap();
        enc.finish().unwrap();
        let mut dec = Decoder::new(buf.as_slice(), b"SCHSTEST", 1).unwrap();
        assert!(matches!(
            Scheduler::decode(&mut dec),
            Err(CodecError::Corrupt("scheduler entry key is not a /48"))
        ));
    }

    #[test]
    fn crafted_flags_and_inconsistent_entries_rejected() {
        // Helper: one entry with raw fields.
        let craft = |spent: u64, found: u64, last: u16, flags: u8| {
            let mut buf = Vec::new();
            let mut enc = Encoder::new(&mut buf, b"SCHSTEST", 1).unwrap();
            enc.put_u64(0).unwrap();
            enc.put_u64(0).unwrap();
            enc.put_len(1).unwrap();
            codec::write_prefix(&mut enc, "2001:db8::/48".parse().unwrap()).unwrap();
            enc.put_u64(spent).unwrap();
            enc.put_u64(found).unwrap();
            enc.put_u16(last).unwrap();
            enc.put_u8(flags).unwrap();
            enc.finish().unwrap();
            buf
        };
        // Reserved flag bits set.
        let buf = craft(0, 0, NEVER_SCANNED, 0b100);
        let mut dec = Decoder::new(buf.as_slice(), b"SCHSTEST", 1).unwrap();
        assert!(matches!(
            Scheduler::decode(&mut dec),
            Err(CodecError::Corrupt("scheduler entry flags out of range"))
        ));
        // A scanned entry crediting finds to zero spend is impossible
        // via record_day — reject rather than divide the fiction later.
        let buf = craft(0, 7, 3, 0);
        let mut dec = Decoder::new(buf.as_slice(), b"SCHSTEST", 1).unwrap();
        assert!(matches!(
            Scheduler::decode(&mut dec),
            Err(CodecError::Corrupt(
                "scheduler entry credits finds to zero spend"
            ))
        ));
        // The happy path with all fields at plausible values decodes.
        let buf = craft(9, 7, 3, 0b11);
        let mut dec = Decoder::new(buf.as_slice(), b"SCHSTEST", 1).unwrap();
        let s = Scheduler::decode(&mut dec).unwrap();
        let e = s.entry("2001:db8::/48".parse().unwrap()).unwrap();
        assert!(e.aliased && e.suspect);
    }

    #[test]
    fn truncated_stream_errors_without_panic() {
        let mut s = Scheduler::new();
        s.record_day(1, &[(p48("2001:db8:1::/48"), 10, 2)]);
        let mut buf = Vec::new();
        let mut enc = Encoder::new(&mut buf, b"SCHSTEST", 1).unwrap();
        s.encode(&mut enc).unwrap();
        enc.finish().unwrap();
        // Chop the envelope anywhere inside the payload: every cut must
        // error (bad checksum or EOF), never panic.
        for cut in 8..buf.len() - 1 {
            let mut dec = match Decoder::new(&buf[..cut], b"SCHSTEST", 1) {
                Ok(d) => d,
                Err(_) => continue,
            };
            let r = Scheduler::decode(&mut dec).and_then(|_| dec.finish());
            assert!(r.is_err(), "cut at {cut} must not verify");
        }
    }
}
