//! `expanse-sched`: the feedback-driven probe scheduler — a
//! deterministic priority work queue that replaces the fixed daily
//! battery grid with budgeted, yield-directed probing.
//!
//! The daily battery probes every kept hitlist member uniformly; a real
//! scanner allocates probes where new addresses are expected. This
//! crate models that allocation as a queue of typed [`Job`]s (the
//! prefix-crab shape): [`Job::EchoScanPrefix`] splits-and-samples a
//! /48 whose response entropy says it is heterogeneous, and
//! [`Job::FollowUpTrace`] confirms suspicious ranges with traceroute.
//! Priorities come from signals the workspace already produces —
//! historical yield per probe and freshness (the hitlist's
//! `probes_spent` accounting), aliased-prefix verdicts (APD), and
//! per-prefix entropy fingerprints (`expanse_entropy`).
//!
//! Two hard invariants keep a scheduled hitlist honest ("IPv6 Hitlists
//! at Scale" is the cautionary grounding — unbounded chasing of
//! high-yield periphery poisons a list):
//!
//! - a **fixed daily probe budget** ([`SchedConfig::daily_budget`]),
//!   spent greedily by expected new-address yield, and
//! - a **hard per-/48 spend cap** ([`SchedConfig::per_48_cap`]) so an
//!   alias fabric answering everything can never monopolize the day.
//!
//! Everything is deterministic: entries live in ordered maps, the
//! priority function is integer fixed-point, and ties break on the
//! prefix order — the same inputs plan the same day on any thread
//! count, which is what lets the pipeline's byte-identical fan-out and
//! resume guarantees extend to scheduled runs. The degenerate
//! configuration (infinite budget and cap, splitting and follow-up
//! disabled) admits every candidate and reproduces the fixed grid
//! byte-identically (`crates/core/tests/sched_determinism.rs`).

#![deny(missing_docs)]

pub mod persist;

use expanse_addr::Prefix;
use expanse_entropy::Fingerprint;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv6Addr;

/// `last_scanned` sentinel: the prefix has never been scheduled.
pub const NEVER_SCANNED: u16 = 0xffff;

/// Scheduling granularity: entries, caps, and spend accounting are all
/// keyed by the covering prefix of this length.
pub const SCHED_PREFIX_LEN: u8 = 48;

/// Split granularity: a split /48 fans out into 16 children of this
/// length, mirroring the /48 → /52 subnetting step.
pub const SPLIT_PREFIX_LEN: u8 = 52;

/// Ceiling on a [`PrefixDemand`] sample: enough addresses for a stable
/// nybble-entropy fingerprint and a follow-up trace pool, small enough
/// that demand building stays O(candidates).
pub const MAX_DEMAND_SAMPLE: usize = 64;

/// Scheduler knobs. The default is **off**: the pipeline runs today's
/// fixed grid and the scheduler is never consulted.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedConfig {
    /// Master switch; `false` = the pipeline's fixed daily grid.
    pub enabled: bool,
    /// Daily probe budget in battery target slots (one slot = one
    /// address probed by the full protocol battery).
    pub daily_budget: u64,
    /// Hard per-/48 daily spend cap, same unit as the budget.
    pub per_48_cap: u64,
    /// Mean normalized nybble entropy (over nybbles 13–16, the /48→/64
    /// span) at or above which a prefix is split into /52 children.
    /// Values above `1.0` disable splitting (entropy is normalized).
    pub split_entropy: f64,
    /// Minimum sample size before an entropy fingerprint is computed;
    /// smaller prefixes are never split.
    pub entropy_min_sample: usize,
    /// Targets handed to each [`Job::FollowUpTrace`] job; `0` disables
    /// follow-up tracing and the suspect feedback into the APD plan.
    pub followup_targets: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            enabled: false,
            daily_budget: u64::MAX,
            per_48_cap: u64::MAX,
            split_entropy: 2.0,
            entropy_min_sample: 16,
            followup_targets: 0,
        }
    }
}

impl SchedConfig {
    /// The degenerate *enabled* configuration: scheduling is consulted
    /// but constrains nothing — infinite budget and cap, splitting and
    /// follow-up disabled. Guaranteed byte-identical to the fixed grid.
    pub fn degenerate() -> Self {
        SchedConfig {
            enabled: true,
            ..SchedConfig::default()
        }
    }

    /// A budgeted feedback preset: spend at most `daily_budget` slots
    /// per day, at most `per_48_cap` per /48, split heterogeneous
    /// prefixes, and trace suspects.
    pub fn budgeted(daily_budget: u64, per_48_cap: u64) -> Self {
        SchedConfig {
            enabled: true,
            daily_budget,
            per_48_cap,
            split_entropy: 0.35,
            entropy_min_sample: 16,
            followup_targets: 8,
        }
    }
}

/// Per-/48 feedback state: everything the priority function reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixEntry {
    /// Cumulative battery target slots spent under this prefix.
    pub spent: u64,
    /// Cumulative responsive addresses credited to those slots.
    pub found: u64,
    /// Last day this prefix was scheduled; [`NEVER_SCANNED`] if never.
    pub last_scanned: u16,
    /// An APD verdict covers this whole prefix: it is alias space and
    /// gets zero priority.
    pub aliased: bool,
    /// Nearly aliased, or an alias fabric sits *inside* the prefix
    /// (its remaining candidates passed the alias filter, so they are
    /// honest — but the neighbourhood is suspect): demoted, traced,
    /// and fed back to the APD plan.
    pub suspect: bool,
}

impl PrefixEntry {
    /// A fresh, never-scanned entry.
    pub fn new() -> Self {
        PrefixEntry {
            spent: 0,
            found: 0,
            last_scanned: NEVER_SCANNED,
            aliased: false,
            suspect: false,
        }
    }
}

// NOT derivable: a fresh entry is *never scanned* (`last_scanned` is
// the 0xffff sentinel, not 0). A derived default would make new
// prefixes look freshly probed and starve them of the staleness boost.
impl Default for PrefixEntry {
    fn default() -> Self {
        Self::new()
    }
}

/// One /48's demand for today: how many battery candidates live under
/// it and a bounded address sample (for entropy and follow-up targets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixDemand {
    /// The covering /48.
    pub net: Prefix,
    /// Battery candidates (kept hitlist members) under it today.
    pub candidates: u64,
    /// A bounded sample of those candidates, ascending.
    pub sample: Vec<Ipv6Addr>,
}

/// A typed unit of scheduled work (the prefix-crab job shapes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Job {
    /// Probe a prefix: when issued for a split /48, each /52 child is
    /// sampled with `sample_k` target slots; unsplit, `sample_k` is the
    /// whole prefix's slot count.
    EchoScanPrefix {
        /// The prefix being scanned (always the /48 entry key).
        net: Prefix,
        /// Target slots per sampled unit (clamped to `u32`).
        sample_k: u32,
    },
    /// Confirm a suspicious range: traceroute these members to their
    /// last-hop routers before believing their responses.
    FollowUpTrace {
        /// Trace targets, drawn from the prefix's demand sample.
        targets: Vec<Ipv6Addr>,
    },
}

/// One queue item as planned for today, for introspection and tracing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedJob {
    /// The /48 the job belongs to.
    pub net: Prefix,
    /// The computed priority it was queued at.
    pub priority: u64,
    /// Budget slots allocated to it.
    pub spend: u64,
    /// The job payload.
    pub job: Job,
}

/// The outcome of [`Scheduler::plan_day`]: per-prefix admission quotas
/// plus the planned job list.
#[derive(Debug, Clone, Default)]
pub struct SchedPlan {
    /// Today's queue, highest priority first.
    pub jobs: Vec<PlannedJob>,
    /// Admission quotas: `/52` entries for split prefixes, `/48`
    /// entries otherwise. [`SchedPlan::admit`] consumes them.
    pub quotas: BTreeMap<Prefix, u64>,
    /// The configured budget this plan was drawn against.
    pub budget: u64,
    /// Slots allocated by the planner.
    pub budget_used: u64,
    /// Per-/48 slots actually admitted so far (see [`SchedPlan::admit`]).
    pub spent: BTreeMap<Prefix, u64>,
    /// Planner-detected violations of the per-/48 cap; an invariant
    /// counter that must stay zero (the bench gate pins it).
    pub cap_violations: u64,
    /// Suspect /48s to union into the APD probing plan.
    pub suspects: Vec<Prefix>,
}

impl SchedPlan {
    /// Admit one battery candidate against the plan's quotas: `true`
    /// consumes a slot (charged to its /52 child if the /48 was split,
    /// else the /48 itself), `false` means the prefix's allocation is
    /// exhausted — or was never selected — and the address is skipped
    /// today. Deterministic: admission depends only on quota state and
    /// call order.
    pub fn admit(&mut self, addr: Ipv6Addr) -> bool {
        let p48 = Prefix::new(addr, SCHED_PREFIX_LEN);
        let key = {
            let p52 = Prefix::new(addr, SPLIT_PREFIX_LEN);
            if self.quotas.contains_key(&p52) {
                p52
            } else {
                p48
            }
        };
        match self.quotas.get_mut(&key) {
            Some(q) if *q > 0 => {
                *q -= 1;
                *self.spent.entry(p48).or_insert(0) += 1;
                true
            }
            _ => false,
        }
    }

    /// All follow-up trace targets across today's jobs, in queue order.
    pub fn trace_targets(&self) -> Vec<Ipv6Addr> {
        let mut out = Vec::new();
        for pj in &self.jobs {
            if let Job::FollowUpTrace { targets } = &pj.job {
                out.extend_from_slice(targets);
            }
        }
        out
    }
}

/// One introspection row: a queue entry as reported over the serve
/// protocol (`expansectl sched`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedJobInfo {
    /// The /48 entry.
    pub net: Prefix,
    /// Job kind: `0` = echo-scan, `1` = follow-up trace (suspect).
    pub kind: u8,
    /// Canonical priority (computed with `candidates = found.max(1)`).
    pub priority: u64,
    /// Cumulative slots spent under the prefix.
    pub spent: u64,
}

/// The scheduler section of a status response: last plan's budget
/// figures plus the top-K queue entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedStatus {
    /// Budget the last plan was drawn against (`0` = never planned).
    pub budget: u64,
    /// Slots the last plan allocated.
    pub used: u64,
    /// Tracked /48 entries.
    pub entries: u64,
    /// Top-K entries by canonical priority, ties on prefix order.
    pub top: Vec<SchedJobInfo>,
}

/// The deterministic priority work queue. Holds one [`PrefixEntry`]
/// per /48 ever scheduled; persisted through the snapshot journal (the
/// `sched` sections of `docs/SNAPSHOT_FORMAT.md`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scheduler {
    pub(crate) entries: BTreeMap<Prefix, PrefixEntry>,
    pub(crate) dirty: BTreeSet<Prefix>,
    pub(crate) last_budget: u64,
    pub(crate) last_used: u64,
}

/// The fixed-point priority of one entry (higher = scan sooner):
/// `candidates × (yield + staleness + 1)`, halved for suspects, zero
/// for aliased prefixes. `yield` is `found/spent` in 1/1024 units
/// (optimistic `1024` before any spend, clamped at `4096`); staleness
/// is `64 × days-since-scan` (clamped at 64 days), with a `4096`
/// never-scanned boost. Pure integer math — no floats, no overflow
/// (≤ 2²⁰ × 2¹³ < 2⁶⁴).
pub fn priority(e: &PrefixEntry, candidates: u64, day: u16) -> u64 {
    if e.aliased {
        return 0;
    }
    let staleness = if e.last_scanned == NEVER_SCANNED {
        4096
    } else {
        u64::from(day.saturating_sub(e.last_scanned).min(64)) * 64
    };
    let yield_q10 = e
        .found
        .saturating_mul(1024)
        .checked_div(e.spent)
        .map_or(1024, |y| y.min(4096));
    let p = candidates.clamp(1, 1 << 20) * (yield_q10 + staleness + 1);
    if e.suspect {
        p / 2
    } else {
        p
    }
}

/// Mean normalized nybble entropy of a demand's sample over nybbles
/// 13–16 (the /48 → /64 span), or `0.0` when the sample is too small
/// to fingerprint.
fn demand_entropy(cfg: &SchedConfig, d: &PrefixDemand) -> f64 {
    if d.sample.len() < cfg.entropy_min_sample.max(1) {
        return 0.0;
    }
    let f = Fingerprint::compute(&d.sample, 13, 16);
    f.values.iter().sum::<f64>() / f.values.len() as f64
}

/// Does an APD verdict prefix overlap a /48 entry (cover it, or sit
/// inside it)?
fn overlaps(verdict: Prefix, net: Prefix) -> bool {
    if verdict.len() <= net.len() {
        verdict.covers(&net)
    } else {
        net.covers(&verdict)
    }
}

impl Scheduler {
    /// An empty scheduler (no history, nothing dirty).
    pub fn new() -> Self {
        Scheduler::default()
    }

    /// Tracked /48 entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// No entries tracked yet?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for a /48, if tracked.
    pub fn entry(&self, net: Prefix) -> Option<&PrefixEntry> {
        self.entries.get(&net)
    }

    /// Suspect (nearly-aliased, not yet aliased) /48s, ascending —
    /// the feedback set unioned into the APD probing plan.
    pub fn suspect_prefixes(&self) -> Vec<Prefix> {
        self.entries
            .iter()
            .filter(|(_, e)| e.suspect && !e.aliased)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Plan one probing day.
    ///
    /// Updates each demanded /48's APD flags from `aliased` /
    /// `suspects`, computes priorities, and greedily spends
    /// `cfg.daily_budget` slots in priority order, never exceeding
    /// `cfg.per_48_cap` per /48. Prefixes whose sample entropy clears
    /// `cfg.split_entropy` are split into /52 children with the
    /// allocation weighted by the sample's per-child member counts;
    /// suspects additionally queue a
    /// [`Job::FollowUpTrace`] when `cfg.followup_targets > 0`.
    ///
    /// Deterministic: demands are keyed by prefix, the priority is
    /// integer-valued, and ties break on ascending prefix.
    pub fn plan_day(
        &mut self,
        cfg: &SchedConfig,
        day: u16,
        demands: &[PrefixDemand],
        aliased: &[Prefix],
        suspects: &[Prefix],
    ) -> SchedPlan {
        let mut plan = SchedPlan {
            budget: cfg.daily_budget,
            ..SchedPlan::default()
        };

        // Refresh the APD flags on every demanded entry; only actual
        // transitions dirty the journal. A verdict at or above the /48
        // means the whole entry is alias space (starved); a verdict
        // strictly inside it leaves the filtered candidates honest but
        // marks the neighbourhood suspect — the fixed grid still probes
        // those members, so starving them would break the degenerate
        // oracle (and waste real coverage).
        for d in demands {
            debug_assert_eq!(d.net.len(), SCHED_PREFIX_LEN, "demands are keyed by /48");
            let e = self.entries.entry(d.net).or_default();
            let is_aliased = aliased
                .iter()
                .any(|&a| a.len() <= d.net.len() && a.covers(&d.net));
            let interior_fabric = !is_aliased
                && aliased
                    .iter()
                    .any(|&a| a.len() > d.net.len() && d.net.covers(&a));
            let is_suspect = interior_fabric || suspects.iter().any(|&s| overlaps(s, d.net));
            if e.aliased != is_aliased || e.suspect != is_suspect {
                e.aliased = is_aliased;
                e.suspect = is_suspect;
                self.dirty.insert(d.net);
            }
        }

        // Priority order: highest first, ties on ascending prefix.
        let mut order: Vec<(u64, &PrefixDemand)> = demands
            .iter()
            .map(|d| {
                let e = self.entries.get(&d.net).copied().unwrap_or_default();
                (priority(&e, d.candidates, day), d)
            })
            .collect();
        order.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.net.cmp(&b.1.net)));

        let mut remaining = cfg.daily_budget;
        let split_on = cfg.split_entropy <= 1.0;
        for (prio, d) in order {
            if prio == 0 || remaining == 0 {
                continue; // aliased prefixes get nothing; budget may be dry
            }
            let take = d.candidates.min(cfg.per_48_cap).min(remaining);
            if take == 0 {
                continue;
            }
            if take > cfg.per_48_cap {
                plan.cap_violations += 1; // unreachable by construction
            }
            remaining -= take;
            plan.budget_used += take;
            let e = self.entries.get(&d.net).copied().unwrap_or_default();

            let split = split_on && take >= 16 && demand_entropy(cfg, d) >= cfg.split_entropy;
            let sampled: u64 = d.sample.len() as u64;
            if split && sampled > 0 {
                // Weight the allocation by the sample's observed /52
                // children. An even 16-way spread parks quota on
                // children with no members, and admission silently
                // underspends the budget by exactly that amount.
                let mut counts = [0u64; 16];
                for a in &d.sample {
                    let nyb = (u128::from_be_bytes(a.octets())
                        >> (128 - u32::from(SPLIT_PREFIX_LEN)))
                        & 0xf;
                    counts[nyb as usize] += 1;
                }
                let mut quotas = [0u64; 16];
                let mut left = take;
                for (q, &c) in quotas.iter_mut().zip(counts.iter()) {
                    *q = take * c / sampled;
                    left -= *q;
                }
                // Remainder round-robins over the sampled children in
                // prefix order, so the full `take` is always assigned.
                let mut i = 0usize;
                while left > 0 {
                    if counts[i % 16] > 0 {
                        quotas[i % 16] += 1;
                        left -= 1;
                    }
                    i += 1;
                }
                let mut sample_k = 0u64;
                for (i, child) in d.net.subprefixes(4).enumerate() {
                    if quotas[i] > 0 {
                        plan.quotas.insert(child, quotas[i]);
                        sample_k = sample_k.max(quotas[i]);
                    }
                }
                plan.jobs.push(PlannedJob {
                    net: d.net,
                    priority: prio,
                    spend: take,
                    job: Job::EchoScanPrefix {
                        net: d.net,
                        sample_k: sample_k.min(u64::from(u32::MAX)) as u32,
                    },
                });
            } else {
                plan.quotas.insert(d.net, take);
                plan.jobs.push(PlannedJob {
                    net: d.net,
                    priority: prio,
                    spend: take,
                    job: Job::EchoScanPrefix {
                        net: d.net,
                        sample_k: take.min(u64::from(u32::MAX)) as u32,
                    },
                });
            }
            if e.suspect && !e.aliased && cfg.followup_targets > 0 {
                let targets: Vec<Ipv6Addr> = d
                    .sample
                    .iter()
                    .take(cfg.followup_targets)
                    .copied()
                    .collect();
                if !targets.is_empty() {
                    plan.jobs.push(PlannedJob {
                        net: d.net,
                        priority: prio,
                        spend: 0,
                        job: Job::FollowUpTrace { targets },
                    });
                }
                plan.suspects.push(d.net);
            }
        }
        plan.suspects.sort();
        plan.suspects.dedup();
        self.last_budget = cfg.daily_budget;
        self.last_used = plan.budget_used;
        plan
    }

    /// Fold one probing day's outcome back into the queue: per /48,
    /// the slots actually spent and the responsive addresses credited.
    /// Touched entries are marked for the next journal delta.
    pub fn record_day(&mut self, day: u16, outcomes: &[(Prefix, u64, u64)]) {
        for &(net, spent, found) in outcomes {
            let e = self.entries.entry(net).or_default();
            e.spent = e.spent.saturating_add(spent);
            e.found = e.found.saturating_add(found);
            e.last_scanned = day;
            self.dirty.insert(net);
        }
    }

    /// The introspection view: last plan's budget figures plus the
    /// top-`k` entries by canonical priority (candidates approximated
    /// by `found.max(1)` so the ranking is derivable from persisted
    /// state alone — identical for live and journal-loaded views).
    pub fn status(&self, day: u16, k: usize) -> SchedStatus {
        let mut ranked: Vec<SchedJobInfo> = self
            .entries
            .iter()
            .map(|(p, e)| SchedJobInfo {
                net: *p,
                kind: u8::from(e.suspect && !e.aliased),
                priority: priority(e, e.found.max(1), day),
                spent: e.spent,
            })
            .collect();
        ranked.sort_by(|a, b| b.priority.cmp(&a.priority).then_with(|| a.net.cmp(&b.net)));
        ranked.truncate(k);
        SchedStatus {
            budget: self.last_budget,
            used: self.last_used,
            entries: self.entries.len() as u64,
            top: ranked,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p48(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn demand(net: &str, candidates: u64) -> PrefixDemand {
        let net = p48(net);
        let sample: Vec<Ipv6Addr> = (0..candidates.min(64))
            .map(|i| net.addr_at(i as u128))
            .collect();
        PrefixDemand {
            net,
            candidates,
            sample,
        }
    }

    #[test]
    fn degenerate_config_admits_everything() {
        let cfg = SchedConfig::degenerate();
        let mut s = Scheduler::new();
        let demands = vec![demand("2001:db8:1::/48", 100), demand("2001:db8:2::/48", 7)];
        let mut plan = s.plan_day(&cfg, 3, &demands, &[], &[]);
        assert_eq!(plan.budget_used, 107);
        assert_eq!(plan.cap_violations, 0);
        assert!(plan.suspects.is_empty());
        for d in &demands {
            for i in 0..d.candidates {
                assert!(
                    plan.admit(d.net.addr_at(i as u128)),
                    "slot {i} of {}",
                    d.net
                );
            }
        }
    }

    #[test]
    fn unselected_prefix_is_refused() {
        let cfg = SchedConfig::degenerate();
        let mut s = Scheduler::new();
        let mut plan = s.plan_day(&cfg, 0, &[demand("2001:db8:1::/48", 4)], &[], &[]);
        assert!(!plan.admit(p48("2001:db8:9::/48").addr_at(0)));
    }

    #[test]
    fn per_48_cap_is_hard() {
        let cfg = SchedConfig::budgeted(1000, 10);
        let mut s = Scheduler::new();
        let demands = vec![demand("2001:db8:1::/48", 500)];
        let mut plan = s.plan_day(&cfg, 0, &demands, &[], &[]);
        assert_eq!(plan.cap_violations, 0);
        let mut admitted = 0u64;
        for i in 0..500u128 {
            if plan.admit(demands[0].net.addr_at(i)) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 10);
        assert_eq!(plan.spent.get(&demands[0].net), Some(&10));
    }

    #[test]
    fn budget_is_spent_by_priority() {
        let cfg = SchedConfig::budgeted(20, 20);
        let mut s = Scheduler::new();
        // Give the second prefix a strong yield history.
        s.record_day(0, &[(p48("2001:db8:1::/48"), 100, 1)]);
        s.record_day(0, &[(p48("2001:db8:2::/48"), 100, 90)]);
        let demands = vec![demand("2001:db8:1::/48", 20), demand("2001:db8:2::/48", 20)];
        let plan = s.plan_day(&cfg, 5, &demands, &[], &[]);
        // The whole budget lands on the high-yield prefix.
        assert_eq!(plan.quotas.get(&p48("2001:db8:2::/48")), Some(&20));
        assert_eq!(plan.quotas.get(&p48("2001:db8:1::/48")), None);
        assert_eq!(plan.budget_used, 20);
    }

    #[test]
    fn aliased_prefixes_are_starved_and_suspects_traced() {
        let mut cfg = SchedConfig::budgeted(100, 50);
        cfg.split_entropy = 2.0; // isolate the alias/suspect behaviour
        let mut s = Scheduler::new();
        let demands = vec![
            demand("2001:db8:1::/48", 30),
            demand("2001:db8:100::/48", 30),
        ];
        // A verdict covering the first /48 (but not the second, which
        // differs inside the /40 span): alias space, starved.
        let covering: Prefix = "2001:db8::/40".parse().unwrap();
        let suspect = p48("2001:db8:100::/48");
        let plan = s.plan_day(&cfg, 1, &demands, &[covering], &[suspect]);
        assert_eq!(plan.quotas.get(&p48("2001:db8:1::/48")), None);
        assert!(s.entry(p48("2001:db8:1::/48")).unwrap().aliased);
        // The suspect still scans (demoted) and gets a follow-up job.
        assert!(plan.quotas.contains_key(&suspect));
        assert_eq!(plan.suspects, vec![suspect]);
        let traces = plan.trace_targets();
        assert_eq!(traces.len(), cfg.followup_targets);
        assert!(traces.iter().all(|&a| suspect.contains(a)));
        assert_eq!(s.suspect_prefixes(), vec![suspect]);
    }

    #[test]
    fn interior_fabric_marks_suspect_not_aliased() {
        // A fabric verdict strictly *inside* the /48: the surviving
        // candidates already passed the alias filter, so the prefix
        // keeps scanning (demoted) instead of being starved — the
        // behaviour the degenerate oracle depends on.
        let mut cfg = SchedConfig::budgeted(100, 50);
        cfg.split_entropy = 2.0;
        let mut s = Scheduler::new();
        let net = p48("2001:db8:1::/48");
        let fabric: Prefix = "2001:db8:1:1::/64".parse().unwrap();
        let plan = s.plan_day(&cfg, 1, &[demand("2001:db8:1::/48", 30)], &[fabric], &[]);
        let e = s.entry(net).unwrap();
        assert!(!e.aliased);
        assert!(e.suspect);
        assert_eq!(plan.quotas.get(&net), Some(&30));
        // Suspect feedback: traced and fed back to the APD plan.
        assert_eq!(plan.suspects, vec![net]);
        assert_eq!(s.suspect_prefixes(), vec![net]);
    }

    #[test]
    fn high_entropy_prefix_splits_into_52s() {
        let mut cfg = SchedConfig::budgeted(64, 64);
        cfg.split_entropy = 0.1;
        cfg.entropy_min_sample = 16;
        let net = p48("2001:db8:1::/48");
        // Spread the sample across all 16 /52 children: maximal nybble-13
        // entropy, so the prefix must split.
        let sample: Vec<Ipv6Addr> = (0..64u128)
            .map(|i| net.addr_at((i % 16) << 76 | (i / 16)))
            .collect();
        let mut s = Scheduler::new();
        let mut plan = s.plan_day(
            &cfg,
            0,
            &[PrefixDemand {
                net,
                candidates: 64,
                sample: sample.clone(),
            }],
            &[],
            &[],
        );
        // 16 /52 quotas of 4 each, no /48-level quota.
        assert_eq!(plan.quotas.len(), 16);
        assert!(plan.quotas.keys().all(|p| p.len() == SPLIT_PREFIX_LEN));
        assert_eq!(plan.quotas.values().sum::<u64>(), 64);
        // Admission charges the /52 child but accounts at the /48.
        assert!(plan.admit(sample[0]));
        assert_eq!(plan.spent.get(&net), Some(&1));
        assert!(matches!(
            plan.jobs[0].job,
            Job::EchoScanPrefix { sample_k: 4, .. } // largest /52 quota
        ));
    }

    #[test]
    fn staleness_rotates_cold_prefixes_back_in() {
        let e_fresh = PrefixEntry {
            spent: 100,
            found: 0,
            last_scanned: 10,
            ..PrefixEntry::new()
        };
        let e_stale = PrefixEntry {
            spent: 100,
            found: 0,
            last_scanned: 0,
            ..PrefixEntry::new()
        };
        assert!(priority(&e_stale, 10, 10) > priority(&e_fresh, 10, 10));
        // Never-scanned beats both.
        assert!(priority(&PrefixEntry::new(), 10, 10) > priority(&e_stale, 10, 10));
    }

    #[test]
    fn status_ranks_by_priority_and_truncates() {
        let mut s = Scheduler::new();
        s.record_day(2, &[(p48("2001:db8:1::/48"), 100, 2)]);
        s.record_day(2, &[(p48("2001:db8:2::/48"), 100, 80)]);
        s.record_day(2, &[(p48("2001:db8:3::/48"), 100, 40)]);
        let cfg = SchedConfig::budgeted(50, 25);
        s.plan_day(&cfg, 3, &[demand("2001:db8:2::/48", 10)], &[], &[]);
        let st = s.status(3, 2);
        assert_eq!(st.entries, 3);
        assert_eq!(st.budget, 50);
        assert_eq!(st.top.len(), 2);
        assert_eq!(st.top[0].net, p48("2001:db8:2::/48"));
        assert!(st.top[0].priority >= st.top[1].priority);
    }
}
