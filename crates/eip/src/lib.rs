//! `expanse-eip`: a re-implementation of Entropy/IP (Foremski, Plonka,
//! Berger — IMC 2016) with the exhaustive generator of the hitlist paper
//! (§7).
//!
//! Pipeline:
//! 1. [`segment()`] — split the 32 nybbles into homogeneous-entropy segments
//! 2. [`model::train`] — mine per-segment value distributions and chain
//!    them into a Bayesian network
//! 3. [`model::EipModel::generate`] — best-first (probability-ordered)
//!    exhaustive walk — the paper's improvement over random sampling,
//!    "focusing on more probable IPv6 addresses under a constrained
//!    scanning budget"
//!
//! ```
//! use expanse_eip::train;
//! use expanse_addr::u128_to_addr;
//!
//! let seeds: Vec<_> = (1..=150u128)
//!     .map(|i| u128_to_addr((0x2001_0db8u128 << 96) | i))
//!     .collect();
//! let model = train(&seeds);
//! let generated = model.generate(200);
//! assert!(!generated.is_empty());
//! ```

pub mod model;
pub mod segment;

pub use model::{train, EipModel, ValueDist};
pub use segment::{entropy_profile, segment, Band, Segment};
