//! Address segmentation by entropy profile (Entropy/IP step 1).
//!
//! Foremski et al. split the 32 nybbles into contiguous segments of
//! homogeneous entropy. We classify each nybble's normalized entropy into
//! bands (constant / low / medium / high) and cut segments at band
//! changes or large jumps, capping segment length so segment values fit
//! in a `u64`.

use expanse_addr::nybbles::nybble;
use expanse_stats::entropy::normalized_entropy16;
use std::net::Ipv6Addr;

/// Entropy band of a nybble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Band {
    /// H < 0.025 — effectively constant.
    Constant,
    /// H < 0.3.
    Low,
    /// H < 0.8.
    Medium,
    /// H ≥ 0.8.
    High,
}

impl Band {
    /// Classify a normalized entropy value into its band.
    pub fn of(h: f64) -> Band {
        if h < 0.025 {
            Band::Constant
        } else if h < 0.3 {
            Band::Low
        } else if h < 0.8 {
            Band::Medium
        } else {
            Band::High
        }
    }
}

/// One segment: nybbles `start..start+len` (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First nybble of the segment (0-based).
    pub start: usize,
    /// Length in nybbles.
    pub len: usize,
    /// Entropy band of the segment.
    pub band: Band,
}

/// Maximum segment length in nybbles (values fit in u64: 16 nybbles).
pub const MAX_SEGMENT_LEN: usize = 8;

/// Per-nybble entropy profile of a seed set.
pub fn entropy_profile(addrs: &[Ipv6Addr]) -> [f64; 32] {
    let mut out = [0.0; 32];
    for (j, slot) in out.iter_mut().enumerate() {
        let mut counts = [0u64; 16];
        for a in addrs {
            counts[usize::from(nybble(*a, j))] += 1;
        }
        *slot = normalized_entropy16(&counts);
    }
    out
}

/// Segment the address space given a seed set.
///
/// # Panics
/// Panics if `addrs` is empty.
pub fn segment(addrs: &[Ipv6Addr]) -> Vec<Segment> {
    assert!(!addrs.is_empty(), "cannot segment an empty seed set");
    let profile = entropy_profile(addrs);
    let mut segments: Vec<Segment> = Vec::new();
    let mut start = 0usize;
    let mut band = Band::of(profile[0]);
    for j in 1..32 {
        let b = Band::of(profile[j]);
        let jump = (profile[j] - profile[j - 1]).abs() > 0.3;
        if b != band || jump || j - start >= MAX_SEGMENT_LEN {
            segments.push(Segment {
                start,
                len: j - start,
                band,
            });
            start = j;
            band = b;
        }
    }
    segments.push(Segment {
        start,
        len: 32 - start,
        band,
    });
    segments
}

/// Extract a segment's value from an address.
pub fn segment_value(addr: Ipv6Addr, seg: &Segment) -> u64 {
    let mut v = 0u64;
    for j in seg.start..seg.start + seg.len {
        v = (v << 4) | u64::from(nybble(addr, j));
    }
    v
}

/// Write a segment value into a partial address (u128, left-aligned).
pub fn apply_segment(bits: u128, seg: &Segment, value: u64) -> u128 {
    let width = 4 * seg.len as u32;
    let shift = 128 - 4 * seg.start as u32 - width;
    let mask = if width >= 128 {
        u128::MAX
    } else {
        ((1u128 << width) - 1) << shift
    };
    (bits & !mask) | ((u128::from(value) << shift) & mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use expanse_addr::u128_to_addr;

    fn counters() -> Vec<Ipv6Addr> {
        (1..=200u128)
            .map(|i| u128_to_addr((0x2001_0db8u128 << 96) | i))
            .collect()
    }

    #[test]
    fn segments_cover_all_nybbles() {
        let segs = segment(&counters());
        let total: usize = segs.iter().map(|s| s.len).sum();
        assert_eq!(total, 32);
        // Contiguous.
        let mut pos = 0;
        for s in &segs {
            assert_eq!(s.start, pos);
            assert!(s.len <= MAX_SEGMENT_LEN);
            pos += s.len;
        }
    }

    #[test]
    fn counter_tail_is_its_own_segment() {
        let segs = segment(&counters());
        // The last segment must not be Constant (counter bits live there).
        let last = segs.last().unwrap();
        assert_ne!(last.band, Band::Constant, "{segs:?}");
        // And the bulk of the address is constant.
        let constant_len: usize = segs
            .iter()
            .filter(|s| s.band == Band::Constant)
            .map(|s| s.len)
            .sum();
        assert!(constant_len >= 24, "{segs:?}");
    }

    #[test]
    fn value_roundtrip() {
        let segs = segment(&counters());
        let addr = counters()[41];
        let mut bits = 0u128;
        for s in &segs {
            bits = apply_segment(bits, s, segment_value(addr, s));
        }
        assert_eq!(u128_to_addr(bits), addr);
    }

    #[test]
    fn apply_segment_is_local() {
        let seg = Segment {
            start: 4,
            len: 4,
            band: Band::Low,
        };
        let bits = apply_segment(u128::MAX, &seg, 0);
        let addr = u128_to_addr(bits);
        for j in 0..32 {
            let want = if (4..8).contains(&j) { 0 } else { 0xf };
            assert_eq!(nybble(addr, j), want, "nybble {j}");
        }
    }

    #[test]
    fn bands() {
        assert_eq!(Band::of(0.0), Band::Constant);
        assert_eq!(Band::of(0.1), Band::Low);
        assert_eq!(Band::of(0.5), Band::Medium);
        assert_eq!(Band::of(0.95), Band::High);
    }
}
