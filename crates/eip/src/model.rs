//! The Entropy/IP statistical model: per-segment value distributions
//! chained into a Bayesian network (steps 2–3), plus the exhaustive
//! probability-ordered generator the paper contributes (§7.1: "we improve
//! the address generator of Entropy/IP by walking the Bayesian network
//! model exhaustively instead of randomly").

use crate::segment::{apply_segment, segment, segment_value, Segment};
use expanse_addr::u128_to_addr;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::net::Ipv6Addr;

/// Max distinct values retained per segment distribution.
const MAX_VALUES: usize = 48;

/// A discrete distribution over segment values: `(value, probability)`
/// sorted by descending probability.
#[derive(Debug, Clone, Default)]
pub struct ValueDist {
    /// `(value, probability)` pairs, descending by probability.
    pub entries: Vec<(u64, f64)>,
}

impl ValueDist {
    /// Detect a counter-like segment (many distinct values densely packed
    /// in a numeric range) and extrapolate: unseen values inside the
    /// range — plus a short tail beyond it — receive a small probability
    /// mass. This is Entropy/IP's range mining: it lets the generator
    /// interpolate counter values the seeds skipped.
    fn extrapolate_ranges(counts: &mut HashMap<u64, u64>) {
        let n = counts.len() as u64;
        if n < 8 {
            return;
        }
        let min = *counts.keys().min().expect("non-empty");
        let max = *counts.keys().max().expect("non-empty");
        let span = max.saturating_sub(min).saturating_add(1);
        if span <= n || span > n.saturating_mul(4) || span > 4096 {
            return; // not counter-like (or too wide to enumerate)
        }
        let total: u64 = counts.values().sum();
        // Missing values inside [min, max] plus a 12.5% tail past max get
        // one "virtual observation" weight each, scaled so the whole
        // extrapolation carries ~15% of the original mass.
        let tail = (span / 8).max(1);
        let holes: Vec<u64> = (min..=max.saturating_add(tail))
            .filter(|v| !counts.contains_key(v))
            .collect();
        if holes.is_empty() {
            return;
        }
        let per_hole = ((total as f64 * 0.15) / holes.len() as f64).ceil() as u64;
        for v in holes {
            counts.insert(v, per_hole.max(1));
        }
    }

    fn from_counts(counts: &HashMap<u64, u64>) -> ValueDist {
        let total: u64 = counts.values().sum();
        let mut entries: Vec<(u64, f64)> = counts
            .iter()
            .map(|(v, c)| (*v, *c as f64 / total.max(1) as f64))
            .collect();
        entries.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        entries.truncate(MAX_VALUES);
        // Renormalize after truncation.
        let mass: f64 = entries.iter().map(|e| e.1).sum();
        if mass > 0.0 {
            for e in entries.iter_mut() {
                e.1 /= mass;
            }
        }
        ValueDist { entries }
    }
}

/// The trained model.
#[derive(Debug, Clone)]
pub struct EipModel {
    /// Entropy segments.
    pub segments: Vec<Segment>,
    /// Marginal distribution per segment.
    pub marginals: Vec<ValueDist>,
    /// Chain conditionals: `cond[i][prev_value]` = distribution of
    /// segment i given segment i-1's value (i ≥ 1).
    pub conditionals: Vec<HashMap<u64, ValueDist>>,
    /// Number of training seeds.
    pub n_seeds: usize,
}

/// Train a model on a seed set.
///
/// # Panics
/// Panics if `seeds` is empty.
pub fn train(seeds: &[Ipv6Addr]) -> EipModel {
    assert!(!seeds.is_empty(), "cannot train on an empty seed set");
    let segments = segment(seeds);
    let n = segments.len();
    let mut marginal_counts: Vec<HashMap<u64, u64>> = vec![HashMap::new(); n];
    let mut cond_counts: Vec<HashMap<u64, HashMap<u64, u64>>> = vec![HashMap::new(); n];
    for &addr in seeds {
        let mut prev = 0u64;
        for (i, seg) in segments.iter().enumerate() {
            let v = segment_value(addr, seg);
            *marginal_counts[i].entry(v).or_insert(0) += 1;
            if i > 0 {
                *cond_counts[i]
                    .entry(prev)
                    .or_default()
                    .entry(v)
                    .or_insert(0) += 1;
            }
            prev = v;
        }
    }
    let marginals: Vec<ValueDist> = marginal_counts
        .into_iter()
        .map(|mut c| {
            ValueDist::extrapolate_ranges(&mut c);
            ValueDist::from_counts(&c)
        })
        .collect();
    let conditionals: Vec<HashMap<u64, ValueDist>> = cond_counts
        .into_iter()
        .map(|m| {
            m.into_iter()
                .map(|(prev, counts)| (prev, ValueDist::from_counts(&counts)))
                .collect()
        })
        .collect();
    EipModel {
        segments,
        marginals,
        conditionals,
        n_seeds: seeds.len(),
    }
}

impl EipModel {
    /// Distribution of segment `i` given the previous segment's value,
    /// falling back to the marginal when the context is unseen.
    fn dist(&self, i: usize, prev: u64) -> &ValueDist {
        if i == 0 {
            return &self.marginals[0];
        }
        self.conditionals[i]
            .get(&prev)
            .filter(|d| !d.entries.is_empty())
            .unwrap_or(&self.marginals[i])
    }

    /// Joint probability of a full address under the chain model.
    pub fn probability(&self, addr: Ipv6Addr) -> f64 {
        let mut p = 1.0;
        let mut prev = 0u64;
        for (i, seg) in self.segments.iter().enumerate() {
            let v = segment_value(addr, seg);
            let d = self.dist(i, prev);
            match d.entries.iter().find(|(x, _)| *x == v) {
                Some((_, q)) => p *= q,
                None => return 0.0,
            }
            prev = v;
        }
        p
    }

    /// Generate up to `budget` addresses in **descending probability
    /// order** — the exhaustive best-first walk of the Bayesian network.
    pub fn generate(&self, budget: usize) -> Vec<Ipv6Addr> {
        #[derive(Debug)]
        struct State {
            /// Negative log probability (min-heap via reversed compare).
            cost: f64,
            seg_idx: usize,
            bits: u128,
            prev: u64,
        }
        impl PartialEq for State {
            fn eq(&self, other: &Self) -> bool {
                self.cost == other.cost
            }
        }
        impl Eq for State {}
        impl PartialOrd for State {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for State {
            fn cmp(&self, other: &Self) -> Ordering {
                // BinaryHeap is a max-heap: smaller cost = greater.
                other
                    .cost
                    .partial_cmp(&self.cost)
                    .unwrap_or(Ordering::Equal)
            }
        }

        let mut heap: BinaryHeap<State> = BinaryHeap::new();
        heap.push(State {
            cost: 0.0,
            seg_idx: 0,
            bits: 0,
            prev: 0,
        });
        let mut out = Vec::with_capacity(budget);
        let mut seen: HashSet<u128> = HashSet::new();
        // Cap the frontier so adversarial models cannot eat memory.
        let frontier_cap = budget.saturating_mul(8).max(4096);
        while let Some(state) = heap.pop() {
            if out.len() >= budget {
                break;
            }
            if state.seg_idx == self.segments.len() {
                if seen.insert(state.bits) {
                    out.push(u128_to_addr(state.bits));
                }
                continue;
            }
            let seg = &self.segments[state.seg_idx];
            let dist = self.dist(state.seg_idx, state.prev);
            for (v, p) in &dist.entries {
                if *p <= 0.0 {
                    continue;
                }
                if heap.len() >= frontier_cap {
                    break;
                }
                heap.push(State {
                    cost: state.cost - p.ln(),
                    seg_idx: state.seg_idx + 1,
                    bits: apply_segment(state.bits, seg, *v),
                    prev: *v,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expanse_addr::u128_to_addr;

    /// Seeds: two subnets, counter IIDs 1..=60, subnet 0 twice as common.
    fn seeds() -> Vec<Ipv6Addr> {
        let mut v = Vec::new();
        for i in 1..=60u128 {
            v.push(u128_to_addr((0x2001_0db8u128 << 96) | i));
            v.push(u128_to_addr((0x2001_0db8u128 << 96) | i)); // weight
            v.push(u128_to_addr((0x2001_0db8u128 << 96) | (1u128 << 64) | i));
        }
        v
    }

    #[test]
    fn train_builds_chain() {
        let m = train(&seeds());
        assert_eq!(m.segments.len(), m.marginals.len());
        assert!(m.n_seeds == 180);
        // Marginals are normalized.
        for d in &m.marginals {
            let mass: f64 = d.entries.iter().map(|e| e.1).sum();
            assert!((mass - 1.0).abs() < 1e-9, "mass={mass}");
        }
    }

    #[test]
    fn generates_in_descending_probability() {
        let m = train(&seeds());
        let gen = m.generate(50);
        assert!(!gen.is_empty());
        let probs: Vec<f64> = gen.iter().map(|a| m.probability(*a)).collect();
        for w in probs.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-12,
                "not descending: {:?}",
                &probs[..10.min(probs.len())]
            );
        }
    }

    #[test]
    fn generated_addresses_match_seed_structure() {
        let m = train(&seeds());
        let gen = m.generate(100);
        let site: expanse_addr::Prefix = "2001:db8::/32".parse().unwrap();
        assert!(gen.iter().all(|a| site.contains(*a)), "escaped the site");
        // No duplicates.
        let set: HashSet<_> = gen.iter().collect();
        assert_eq!(set.len(), gen.len());
    }

    #[test]
    fn discovers_unseen_combinations() {
        // Subnet 1 only saw IIDs 1..=60, subnet 0 saw the same. The chain
        // can recombine (subnet, iid) pairs — generating more than the
        // 120 distinct seeds.
        let m = train(&seeds());
        let gen = m.generate(250);
        let seed_set: HashSet<Ipv6Addr> = seeds().into_iter().collect();
        assert!(seed_set.len() < 200);
        // Generation beyond the seed count means new addresses appeared.
        let new = gen.iter().filter(|a| !seed_set.contains(a)).count();
        // With a pure chain over (constant, subnet, iid) segments there
        // may be few or no new combos; accept either but require the
        // generator to have reproduced the seeds at minimum.
        assert!(gen.len() >= seed_set.len().min(120), "gen={}", gen.len());
        let _ = new;
    }

    #[test]
    fn budget_respected() {
        let m = train(&seeds());
        assert_eq!(m.generate(7).len(), 7);
        assert!(m.generate(0).is_empty());
    }

    #[test]
    fn probability_zero_for_foreign_address() {
        let m = train(&seeds());
        assert_eq!(m.probability("2a00::1".parse().unwrap()), 0.0);
    }

    #[test]
    fn deterministic() {
        let m = train(&seeds());
        assert_eq!(m.generate(40), m.generate(40));
    }

    #[test]
    #[should_panic(expected = "empty seed set")]
    fn empty_training_panics() {
        train(&[]);
    }
}
