//! Property tests for Entropy/IP: segmentation and generation invariants.

use expanse_addr::{u128_to_addr, Prefix};
use expanse_eip::{segment, train};
use proptest::prelude::*;
use std::collections::HashSet;
use std::net::Ipv6Addr;

/// Seeds with controllable structure: a /48 site, `n_subnets` subnets,
/// counter IIDs.
fn structured_seeds(site_id: u16, n_subnets: u8, n: usize) -> Vec<Ipv6Addr> {
    let base = (0x2001_0db8u128 << 96) | (u128::from(site_id) << 80);
    (0..n)
        .map(|i| {
            let subnet = (i % usize::from(n_subnets.max(1))) as u128;
            u128_to_addr(base | (subnet << 64) | (1 + i as u128 / 4))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn segments_partition_address(site in any::<u16>(), subnets in 1u8..8, n in 100usize..300) {
        let seeds = structured_seeds(site, subnets, n);
        let segs = segment(&seeds);
        let total: usize = segs.iter().map(|s| s.len).sum();
        prop_assert_eq!(total, 32);
        let mut pos = 0;
        for s in &segs {
            prop_assert_eq!(s.start, pos);
            prop_assert!(s.len >= 1);
            pos += s.len;
        }
    }

    #[test]
    fn generation_is_deduped_and_bounded(
        site in any::<u16>(), subnets in 1u8..8, budget in 1usize..400,
    ) {
        let seeds = structured_seeds(site, subnets, 150);
        let model = train(&seeds);
        let out = model.generate(budget);
        prop_assert!(out.len() <= budget);
        let set: HashSet<&Ipv6Addr> = out.iter().collect();
        prop_assert_eq!(set.len(), out.len(), "duplicates in generation");
    }

    #[test]
    fn generated_addresses_have_positive_probability(
        site in any::<u16>(), subnets in 1u8..6,
    ) {
        let seeds = structured_seeds(site, subnets, 200);
        let model = train(&seeds);
        for a in model.generate(100) {
            prop_assert!(model.probability(a) > 0.0, "{a} has zero probability");
        }
    }

    #[test]
    fn generation_descends_in_probability(site in any::<u16>(), subnets in 1u8..6) {
        let seeds = structured_seeds(site, subnets, 200);
        let model = train(&seeds);
        let out = model.generate(80);
        let probs: Vec<f64> = out.iter().map(|a| model.probability(*a)).collect();
        for w in probs.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12, "{:?}", &probs[..8.min(probs.len())]);
        }
    }

    #[test]
    fn generation_stays_in_the_site(site in any::<u16>(), subnets in 1u8..8) {
        let seeds = structured_seeds(site, subnets, 150);
        let site48 = Prefix::new(seeds[0], 48);
        let model = train(&seeds);
        for a in model.generate(150) {
            prop_assert!(site48.contains(a), "{a} escaped {site48}");
        }
    }
}
