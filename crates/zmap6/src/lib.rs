//! `expanse-zmap6`: a ZMapv6-style stateless IPv6 scanner, sans-IO.
//!
//! A faithful port of the ZMap architecture (Durumeric et al., and the
//! TUM ZMapv6 fork the paper uses) to the simulation substrate:
//!
//! - **probe modules** ([`module`]) — ICMPv6 echo, TCP SYN (80/443) with
//!   the §5.4 `synopt` fingerprinting option set, UDP/53 DNS, UDP/443
//!   QUIC;
//! - **stateless validation** ([`validate`]) — probe fields are a keyed
//!   hash of the destination, so replies validate without per-target
//!   state;
//! - **pseudorandom target permutation** ([`permute`]) — a keyed Feistel
//!   permutation with sharding (zmap uses a multiplicative cyclic group;
//!   same contract);
//! - **the scan loop** ([`scanner`]) — rate-limited sends over a
//!   [`expanse_netsim::Network`], validated receive path, per-protocol
//!   and merged results ([`results`]).
//!
//! ```no_run
//! use expanse_zmap6::{ScanConfig, Scanner, module::IcmpEchoModule};
//! use expanse_model::{InternetModel, ModelConfig};
//!
//! let net = InternetModel::build(ModelConfig::tiny(1));
//! let mut scanner = Scanner::new(net, ScanConfig::default());
//! let targets = vec!["2001:db8::1".parse().unwrap()];
//! let result = scanner.scan(&targets, &IcmpEchoModule);
//! println!("{} responsive", result.responsive_count());
//! ```

pub mod blacklist;
pub mod module;
pub mod permute;
pub mod results;
pub mod scanner;
pub mod validate;

pub use blacklist::Blacklist;
pub use module::{standard_battery, ProbeModule, ReplyKind, SynAckInfo};
pub use permute::Permutation;
pub use results::{MultiScanResult, ProbeReply, ScanResult};
pub use scanner::{responsive_sets, ScanConfig, Scanner};
pub use validate::Validator;
