//! Scan blacklisting (§10.1 of the paper: "We follow scanning best
//! practices by maintaining a blacklist").
//!
//! A [`Blacklist`] is a prefix set consulted before each probe; targets
//! inside it are never sent to, and the scanner reports how many were
//! suppressed. The file format is one prefix per line with `#` comments —
//! the same convention zmap's `--blacklist-file` uses.

use expanse_addr::{Prefix, PrefixParseError};
use expanse_trie::PrefixSet;
use std::net::Ipv6Addr;

/// A set of never-probe prefixes.
#[derive(Debug, Clone, Default)]
pub struct Blacklist {
    set: PrefixSet,
    len: usize,
}

impl Blacklist {
    /// An empty blacklist.
    pub fn new() -> Self {
        Blacklist::default()
    }

    /// Add one prefix.
    pub fn add(&mut self, p: Prefix) {
        if self.set.add(p) {
            self.len += 1;
        }
    }

    /// Parse from the one-prefix-per-line format. Lines starting with `#`
    /// and blank lines are ignored; the first malformed line aborts with
    /// its line number.
    pub fn parse(input: &str) -> Result<Blacklist, (usize, PrefixParseError)> {
        let mut bl = Blacklist::new();
        for (i, line) in input.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let p: Prefix = line.parse().map_err(|e| (i + 1, e))?;
            bl.add(p);
        }
        Ok(bl)
    }

    /// Is `addr` blacklisted?
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        self.set.covers_addr(addr)
    }

    /// Number of blacklist entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the blacklist empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Partition targets into (probeable, suppressed).
    pub fn filter(&self, targets: &[Ipv6Addr]) -> (Vec<Ipv6Addr>, usize) {
        let mut ok = Vec::with_capacity(targets.len());
        let mut suppressed = 0;
        for &t in targets {
            if self.contains(t) {
                suppressed += 1;
            } else {
                ok.push(t);
            }
        }
        (ok, suppressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_match() {
        let bl =
            Blacklist::parse("# research network opt-outs\n2001:db8:bad::/48\n\n2a00:dead::/32\n")
                .expect("valid file");
        assert_eq!(bl.len(), 2);
        assert!(bl.contains("2001:db8:bad::1".parse().unwrap()));
        assert!(bl.contains("2a00:dead:beef::9".parse().unwrap()));
        assert!(!bl.contains("2001:db8:cafe::1".parse().unwrap()));
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = Blacklist::parse("2001:db8::/32\nnot-a-prefix\n").unwrap_err();
        assert_eq!(err.0, 2);
    }

    #[test]
    fn filter_partitions() {
        let mut bl = Blacklist::new();
        bl.add("2001:db8::/32".parse().unwrap());
        let targets: Vec<Ipv6Addr> = vec![
            "2001:db8::1".parse().unwrap(),
            "2a00::1".parse().unwrap(),
            "2001:db8:ffff::2".parse().unwrap(),
        ];
        let (ok, suppressed) = bl.filter(&targets);
        assert_eq!(ok.len(), 1);
        assert_eq!(suppressed, 2);
    }

    #[test]
    fn duplicates_not_double_counted() {
        let mut bl = Blacklist::new();
        bl.add("2001:db8::/32".parse().unwrap());
        bl.add("2001:db8::/32".parse().unwrap());
        assert_eq!(bl.len(), 1);
        assert!(!bl.is_empty());
    }
}
