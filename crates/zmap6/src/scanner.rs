//! The scan loop: permute targets, rate-limit sends, collect and
//! validate replies.
//!
//! # The battery fan-out
//!
//! The multi-protocol battery ([`Scanner::scan_battery`]) is the
//! pipeline's hot path: every virtual day re-probes the whole non-aliased
//! hitlist once per protocol. It is decomposed into a **fixed grid of
//! independent jobs** — one per `(protocol, sub-shard)` pair, the
//! sub-shards carved by the same keyed permutation zmap uses for
//! `--shards` — and each job runs against its own snapshot of the
//! network starting from the same virtual instant. Because the
//! decomposition is fixed by [`Fanout`] (not by the executing thread
//! count), a worker pool ([`Scanner::scan_battery_parallel`]) and a
//! sequential loop ([`Scanner::scan_battery_serial`]) produce
//! **identical** [`MultiScanResult`]s; `tests/fanout_determinism.rs`
//! in `expanse-core` holds that guarantee.
//!
//! The price of independence is deliberate: destination-side middlebox
//! state (ICMP token buckets, SYN-proxy counters) is *private per job*,
//! whereas real concurrent scanners share the destination's middleboxes.
//! Each sub-shard therefore sees a fraction of the probe pressure —
//! e.g. eight sub-shards give a rate-limited prefix eight private token
//! buckets — so `shards_per_protocol` is a results-affecting modeling
//! knob, not a free tuning parameter. The pipeline's paper-shape tests
//! pin the default (8); change it only alongside them.

use crate::blacklist::Blacklist;
use crate::module::ProbeModule;
use crate::permute::Permutation;
use crate::results::{MultiScanResult, ProbeReply, ScanResult};
use crate::validate::Validator;
use expanse_netsim::{Duration, EventQueue, Network, SnapshotNetwork, Time};
use expanse_packet::{Datagram, Protocol};
use std::net::Ipv6Addr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How the multi-protocol battery decomposes and executes.
///
/// The decomposition (`shards_per_protocol`) fixes the *work grid* and
/// therefore the results; `parallel` only chooses whether a worker pool
/// or a sequential loop walks that grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fanout {
    /// Sub-shards each protocol pass is split into. Results depend on
    /// this value (each sub-shard has its own virtual clock), so it is
    /// part of the scan configuration, not an execution detail.
    pub shards_per_protocol: u64,
    /// Execute the grid on a worker pool sized to the machine. `false`
    /// walks the identical grid serially — same results, one core.
    pub parallel: bool,
}

impl Default for Fanout {
    fn default() -> Self {
        Fanout {
            shards_per_protocol: 8,
            parallel: true,
        }
    }
}

impl Fanout {
    /// A serial executor over the same grid (for A/B determinism checks
    /// and single-core baselines).
    pub fn serial(self) -> Self {
        Fanout {
            parallel: false,
            ..self
        }
    }
}

/// Scanner configuration.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Source address probes are sent from.
    pub src: Ipv6Addr,
    /// Probes per (virtual) second.
    pub rate_pps: u64,
    /// Scan secret (drives validation and the target permutation).
    pub seed: u64,
    /// How long to keep listening after the last probe.
    pub cooldown: Duration,
    /// Shard selection `(shard, total)`, zmap's `--shard/--shards`.
    pub shard: (u64, u64),
    /// Never-probe prefixes (§10.1 scanning ethics).
    pub blacklist: Blacklist,
    /// Battery decomposition and execution policy.
    pub fanout: Fanout,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            src: "2001:db8:ffff::1".parse().expect("valid vantage"),
            rate_pps: 100_000,
            seed: 0x5ca9,
            cooldown: Duration::from_secs(5),
            shard: (0, 1),
            blacklist: Blacklist::new(),
            fanout: Fanout::default(),
        }
    }
}

/// A sans-IO scanner bound to a network.
pub struct Scanner<N: Network> {
    net: N,
    cfg: ScanConfig,
    clock: Time,
}

impl<N: Network> Scanner<N> {
    /// Create a new instance.
    pub fn new(net: N, cfg: ScanConfig) -> Self {
        Scanner {
            net,
            cfg,
            clock: Time::ZERO,
        }
    }

    /// Access the underlying network (e.g. to advance model days).
    pub fn network_mut(&mut self) -> &mut N {
        &mut self.net
    }

    /// Shared access to the underlying network.
    pub fn network(&self) -> &N {
        &self.net
    }

    /// The scan configuration.
    pub fn config(&self) -> &ScanConfig {
        &self.cfg
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.clock
    }

    /// Restore the virtual clock (snapshot resume). The clock is
    /// genuine cross-day state: every scan starts where the previous
    /// one ended, reply timestamps build on it, and the canonical
    /// battery digest hashes those timestamps — so a resumed pipeline
    /// must continue from the saved clock to stay byte-identical with
    /// an uninterrupted run.
    pub fn set_now(&mut self, t: Time) {
        self.clock = t;
    }

    /// Scan `targets` with one module. Probes are sent in permuted order
    /// at the configured rate; replies are validated statelessly.
    pub fn scan(&mut self, targets: &[Ipv6Addr], module: &dyn ProbeModule) -> ScanResult {
        let (shard, shards) = self.cfg.shard;
        let (result, end) = Self::scan_job(
            &mut self.net,
            &self.cfg,
            self.clock,
            targets,
            module,
            shard,
            shards,
        );
        self.clock = end;
        result
    }

    /// One scan job: the core rate-limited send/receive loop over shard
    /// `shard` of `shards`, against `net`, starting at `start`. Pure in
    /// its inputs — this is the unit the battery fan-out distributes.
    fn scan_job<M: Network>(
        net: &mut M,
        cfg: &ScanConfig,
        start: Time,
        targets: &[Ipv6Addr],
        module: &dyn ProbeModule,
        shard: u64,
        shards: u64,
    ) -> (ScanResult, Time) {
        let validator = Validator::new(cfg.seed);
        let mut result = ScanResult::new(module.protocol());
        if targets.is_empty() {
            return (result, start);
        }
        let perm = Permutation::new(targets.len() as u64, cfg.seed);
        let gap = Duration(1_000_000_000 / cfg.rate_pps.max(1));
        let mut rx: EventQueue<Vec<u8>> = EventQueue::new();
        let mut clock = start;

        for idx in perm.shard(shard, shards) {
            let dst = targets[idx as usize];
            if cfg.blacklist.contains(dst) {
                result.blacklisted += 1;
                continue;
            }
            let probe = module.build(cfg.src, dst, &validator);
            result.sent += 1;
            for d in net.inject(clock, &probe.emit()) {
                rx.push(d.at, d.frame);
            }
            clock += gap;
            // Drain replies that have arrived by now.
            while let Some((at, frame)) = rx.pop_due(clock) {
                Self::receive(&mut result, module, &validator, at, &frame);
            }
        }
        // Cooldown drain.
        let deadline = clock + cfg.cooldown;
        while let Some((at, frame)) = rx.pop_due(deadline) {
            Self::receive(&mut result, module, &validator, at, &frame);
        }
        (result, deadline)
    }

    fn receive(
        result: &mut ScanResult,
        module: &dyn ProbeModule,
        validator: &Validator,
        at: Time,
        frame: &[u8],
    ) {
        result.received += 1;
        let Ok((hdr, transport)) = Datagram::parse_transport(frame) else {
            result.malformed += 1;
            return;
        };
        let Some((target, kind)) = module.classify(&hdr, &transport, validator) else {
            result.unvalidated += 1;
            return;
        };
        let reply = ProbeReply {
            target,
            from: hdr.src,
            at,
            ttl: hdr.hop_limit,
            kind,
        };
        // First reply wins (zmap dedup); duplicates are counted.
        if let std::collections::hash_map::Entry::Vacant(e) = result.replies.entry(target) {
            e.insert(reply);
        } else {
            result.duplicates += 1;
        }
    }
}

impl<N: SnapshotNetwork + Sync> Scanner<N> {
    /// Run the paper's whole §6 battery over `targets`: one pass per
    /// protocol, each split into [`Fanout::shards_per_protocol`]
    /// sub-shards, merged per-address. Dispatches to the parallel or
    /// serial executor per `cfg.fanout.parallel`; both produce identical
    /// results for the same configuration.
    pub fn scan_battery(
        &mut self,
        targets: &[Ipv6Addr],
        modules: &[Box<dyn ProbeModule>],
    ) -> MultiScanResult {
        if self.cfg.fanout.parallel {
            self.scan_battery_parallel(targets, modules)
        } else {
            self.scan_battery_serial(targets, modules)
        }
    }

    /// [`Scanner::scan_battery`], resolving each responsive address to a
    /// caller-domain id *during* the merge (see
    /// [`MultiScanResult::merge_resolved`]) — the pipeline passes its
    /// hitlist lookup here instead of re-hashing every responder after
    /// the battery returns. Executor choice follows `cfg.fanout.parallel`
    /// exactly as in [`Scanner::scan_battery`]; the resolver only runs
    /// on the serial merge fold, so it needs no synchronization.
    pub fn scan_battery_resolved(
        &mut self,
        targets: &[Ipv6Addr],
        modules: &[Box<dyn ProbeModule>],
        resolve: &mut dyn FnMut(Ipv6Addr) -> expanse_addr::AddrId,
    ) -> MultiScanResult {
        let cells = if self.cfg.fanout.parallel {
            self.battery_cells_parallel(targets, modules)
        } else {
            self.battery_cells_serial(targets, modules)
        };
        self.merge_battery(modules, cells, Some(resolve))
    }

    /// The battery grid, walked by one thread. Reference executor for
    /// determinism checks and single-core baselines.
    pub fn scan_battery_serial(
        &mut self,
        targets: &[Ipv6Addr],
        modules: &[Box<dyn ProbeModule>],
    ) -> MultiScanResult {
        let cells = self.battery_cells_serial(targets, modules);
        self.merge_battery(modules, cells, None)
    }

    /// One-thread executor for the battery grid's cells.
    fn battery_cells_serial(
        &mut self,
        targets: &[Ipv6Addr],
        modules: &[Box<dyn ProbeModule>],
    ) -> Vec<Option<(ScanResult, Time)>> {
        let grid = self.battery_grid(modules.len());
        let mut cells: Vec<Option<(ScanResult, Time)>> = Vec::with_capacity(grid.len());
        for &(m, job, jobs) in &grid {
            let mut net = self.net.snapshot();
            cells.push(Some(Self::scan_job(
                &mut net,
                &self.cfg,
                self.clock,
                targets,
                modules[m].as_ref(),
                job,
                jobs,
            )));
        }
        cells
    }

    /// The battery grid, walked by a worker pool sized by
    /// [`expanse_addr::worker_threads`] (the `EXPANSE_THREADS` knob).
    /// Each worker claims cells off a shared counter; every cell clones
    /// the network snapshot, so execution order cannot influence results.
    pub fn scan_battery_parallel(
        &mut self,
        targets: &[Ipv6Addr],
        modules: &[Box<dyn ProbeModule>],
    ) -> MultiScanResult {
        let cells = self.battery_cells_parallel(targets, modules);
        self.merge_battery(modules, cells, None)
    }

    /// Worker-pool executor for the battery grid's cells.
    fn battery_cells_parallel(
        &mut self,
        targets: &[Ipv6Addr],
        modules: &[Box<dyn ProbeModule>],
    ) -> Vec<Option<(ScanResult, Time)>> {
        let grid = self.battery_grid(modules.len());
        let workers = expanse_addr::worker_threads().min(grid.len()).max(1);
        if workers == 1 {
            // One worker = the serial walk, minus thread/Mutex overhead;
            // results are identical by construction.
            return self.battery_cells_serial(targets, modules);
        }
        let cells: Vec<Mutex<Option<(ScanResult, Time)>>> =
            grid.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let this: &Scanner<N> = self;
        // check: allow(thread, results land in per-cell slots indexed by grid position; collection order is deterministic)
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(m, job, jobs)) = grid.get(i) else {
                        break;
                    };
                    let mut net = this.net.snapshot();
                    let out = Self::scan_job(
                        &mut net,
                        &this.cfg,
                        this.clock,
                        targets,
                        modules[m].as_ref(),
                        job,
                        jobs,
                    );
                    *cells[i].lock().expect("cell lock") = Some(out);
                });
            }
        });
        cells
            .into_iter()
            .map(|c| c.into_inner().expect("cell lock"))
            .collect()
    }

    /// The fixed work grid: `(module index, sub-shard, total shards)`
    /// cells, composing the configured zmap-level shard selection with
    /// the fan-out's per-protocol sub-sharding. For outer selection
    /// `(s, T)` and `J` sub-shards, sub-shard `j` walks permutation
    /// positions `i` with `i ≡ s + T·j (mod T·J)` — a partition of the
    /// outer shard's positions.
    fn battery_grid(&self, n_modules: usize) -> Vec<(usize, u64, u64)> {
        let (shard, shards) = self.cfg.shard;
        let per = self.cfg.fanout.shards_per_protocol.max(1);
        let mut grid = Vec::with_capacity(n_modules * per as usize);
        for m in 0..n_modules {
            for j in 0..per {
                grid.push((m, shard + shards * j, shards * per));
            }
        }
        grid
    }

    /// Fold the grid's cells into one [`MultiScanResult`], in module
    /// order, summing counters and unioning the (disjoint) per-target
    /// reply maps; the scanner clock advances to the slowest cell's end
    /// time, like a barrier over parallel zmap processes.
    fn merge_battery(
        &mut self,
        modules: &[Box<dyn ProbeModule>],
        cells: Vec<Option<(ScanResult, Time)>>,
        mut resolve: Option<&mut dyn FnMut(Ipv6Addr) -> expanse_addr::AddrId>,
    ) -> MultiScanResult {
        let per = self.cfg.fanout.shards_per_protocol.max(1) as usize;
        let mut multi = MultiScanResult::default();
        let mut end = self.clock;
        let mut cells = cells.into_iter();
        for module in modules {
            let mut merged = ScanResult::new(module.protocol());
            for _ in 0..per {
                // Every cell is filled by construction (worker panics
                // propagate out of thread::scope); a hole here would
                // silently drop a sub-shard's results, so fail loudly.
                let (part, cell_end) = cells
                    .next()
                    .expect("battery grid shorter than modules × shards")
                    .expect("battery cell left unfilled");
                merged.absorb_shard(part);
                end = end.max(cell_end);
            }
            match resolve.as_deref_mut() {
                Some(resolve) => multi.merge_resolved(merged, resolve),
                None => multi.merge(merged),
            }
        }
        self.clock = end;
        multi
    }
}

/// Convenience: is the reply a positive service answer?
pub fn positive(reply: &ProbeReply) -> bool {
    reply.kind.is_positive()
}

/// Derive the per-protocol responsive sets from a battery result.
pub fn responsive_sets(multi: &MultiScanResult) -> Vec<(Protocol, Vec<Ipv6Addr>)> {
    Protocol::ALL
        .iter()
        .map(|p| {
            let mut v: Vec<Ipv6Addr> = multi
                .by_protocol
                .get(p)
                .map(|r| {
                    r.replies
                        .values()
                        .filter(|rep| rep.kind.is_positive())
                        .map(|rep| rep.target)
                        .collect()
                })
                .unwrap_or_default();
            v.sort();
            (*p, v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{IcmpEchoModule, ReplyKind, TcpSynModule};
    use expanse_model::{InternetModel, ModelConfig};

    fn scanner() -> Scanner<InternetModel> {
        let model = InternetModel::build(ModelConfig::tiny(21));
        Scanner::new(model, ScanConfig::default())
    }

    #[test]
    fn scans_aliased_prefix_fully() {
        let mut s = scanner();
        let p48 = s.network_mut().population.special.cdn_hook_48s[0];
        let targets: Vec<Ipv6Addr> = (0..50u64)
            .map(|i| expanse_addr::keyed_random_addr(p48, i))
            .collect();
        let r = s.scan(&targets, &IcmpEchoModule);
        assert_eq!(r.sent, 50);
        // Aliased: nearly everything answers (minus base loss).
        assert!(r.replies.len() >= 40, "{} replies", r.replies.len());
        assert!(r.replies.values().all(|rep| rep.kind.is_positive()));
        assert_eq!(r.malformed, 0);
        assert_eq!(r.unvalidated, 0);
    }

    #[test]
    fn ghost_targets_no_response() {
        let mut s = scanner();
        // Unrouted space.
        let targets: Vec<Ipv6Addr> = (0..20u64)
            .map(|i| expanse_addr::u128_to_addr((0x3fffu128 << 112) | u128::from(i)))
            .collect();
        let r = s.scan(&targets, &IcmpEchoModule);
        assert_eq!(r.sent, 20);
        assert!(r.replies.is_empty());
    }

    #[test]
    fn tcp_scan_of_alias_returns_synacks() {
        let mut s = scanner();
        let p48 = s.network_mut().population.special.cdn_hook_48s[1];
        let targets: Vec<Ipv6Addr> = (0..30u64)
            .map(|i| expanse_addr::keyed_random_addr(p48, i))
            .collect();
        let r = s.scan(&targets, &TcpSynModule::with_synopt(80));
        assert!(r.replies.len() >= 20, "{}", r.replies.len());
        for rep in r.replies.values() {
            match &rep.kind {
                ReplyKind::SynAck(info) => {
                    assert!(!info.options_text.is_empty());
                }
                other => panic!("expected SYN-ACK, got {other:?}"),
            }
        }
    }

    #[test]
    fn shards_cover_disjoint_targets() {
        let model = InternetModel::build(ModelConfig::tiny(21));
        let p48 = model.population.special.cdn_hook_48s[0];
        let targets: Vec<Ipv6Addr> = (0..40u64)
            .map(|i| expanse_addr::keyed_random_addr(p48, i))
            .collect();

        let mut sent_total = 0;
        for shard in 0..3u64 {
            let model = InternetModel::build(ModelConfig::tiny(21));
            let mut s = Scanner::new(
                model,
                ScanConfig {
                    shard: (shard, 3),
                    ..ScanConfig::default()
                },
            );
            let r = s.scan(&targets, &IcmpEchoModule);
            sent_total += r.sent;
        }
        assert_eq!(sent_total, 40);
    }

    #[test]
    fn battery_merges_protocols() {
        let mut s = scanner();
        let p48 = s.network_mut().population.special.cdn_hook_48s[0];
        let targets: Vec<Ipv6Addr> = (0..20u64)
            .map(|i| expanse_addr::keyed_random_addr(p48, i))
            .collect();
        let multi = s.scan_battery(&targets, &crate::module::standard_battery());
        // Aliased CDN hooks answer ICMP + TCP80 + TCP443 but not DNS.
        let sets = responsive_sets(&multi);
        let get = |p: Protocol| {
            sets.iter()
                .find(|(q, _)| *q == p)
                .map(|(_, v)| v.len())
                .unwrap_or(0)
        };
        assert!(get(Protocol::Icmp) >= 15);
        assert!(get(Protocol::Tcp80) >= 15);
        assert_eq!(get(Protocol::Udp53), 0);
        // Per-address protocol sets populated.
        let any = multi.responsive.iter().next().unwrap();
        assert!(any.1.len() >= 2, "{:?}", any);
    }

    #[test]
    fn parallel_and_serial_battery_identical() {
        let p48 = InternetModel::build(ModelConfig::tiny(21))
            .population
            .special
            .cdn_hook_48s[0];
        let targets: Vec<Ipv6Addr> = (0..200u64)
            .map(|i| expanse_addr::keyed_random_addr(p48, i))
            .collect();
        let battery = crate::module::standard_battery();
        let run = |parallel: bool| {
            let model = InternetModel::build(ModelConfig::tiny(21));
            let mut cfg = ScanConfig::default();
            cfg.fanout.parallel = parallel;
            let mut s = Scanner::new(model, cfg);
            let multi = s.scan_battery(&targets, &battery);
            (multi, s.now())
        };
        let (serial, serial_end) = run(false);
        let (parallel, parallel_end) = run(true);
        assert_eq!(serial, parallel, "fan-out must not change results");
        assert_eq!(serial.digest(), parallel.digest());
        assert_eq!(serial_end, parallel_end, "clock advance must match");
        assert!(serial.total_sent() >= 200 * 5 - 100);
    }

    #[test]
    fn battery_composes_with_outer_zmap_shards() {
        // Multi-instance scanning: three scanner instances with
        // shard=(s,3), each sub-sharded 4 ways. The composed grid
        // (`shard + shards·j` of `shards·per`) must still partition the
        // target set — every target probed exactly once per protocol
        // across the instances, none double-probed or skipped.
        let p48 = InternetModel::build(ModelConfig::tiny(21))
            .population
            .special
            .cdn_hook_48s[0];
        let targets: Vec<Ipv6Addr> = (0..41u64)
            .map(|i| expanse_addr::keyed_random_addr(p48, i))
            .collect();
        let battery = crate::module::standard_battery();
        let mut sent_per_protocol: std::collections::HashMap<Protocol, u64> =
            std::collections::HashMap::new();
        let mut seen: std::collections::HashMap<Protocol, Vec<Ipv6Addr>> =
            std::collections::HashMap::new();
        for shard in 0..3u64 {
            let model = InternetModel::build(ModelConfig::tiny(21));
            let mut cfg = ScanConfig {
                shard: (shard, 3),
                ..ScanConfig::default()
            };
            cfg.fanout.shards_per_protocol = 4;
            let mut s = Scanner::new(model, cfg);
            let multi = s.scan_battery(&targets, &battery);
            for (p, r) in &multi.by_protocol {
                *sent_per_protocol.entry(*p).or_default() += r.sent;
                seen.entry(*p)
                    .or_default()
                    .extend(r.replies.keys().copied());
            }
        }
        for (p, sent) in &sent_per_protocol {
            assert_eq!(*sent, 41, "protocol {p:?} probes must partition");
        }
        for (p, replies) in &mut seen {
            let before = replies.len();
            replies.sort();
            replies.dedup();
            assert_eq!(before, replies.len(), "{p:?}: a target answered twice");
        }
    }

    #[test]
    fn battery_shards_partition_sends() {
        // Whatever the sub-shard count, every target is probed exactly
        // once per protocol (the grid partitions the permutation).
        let p48 = InternetModel::build(ModelConfig::tiny(21))
            .population
            .special
            .cdn_hook_48s[0];
        let targets: Vec<Ipv6Addr> = (0..37u64)
            .map(|i| expanse_addr::keyed_random_addr(p48, i))
            .collect();
        let battery = crate::module::standard_battery();
        for shards in [1u64, 3, 8, 64] {
            let model = InternetModel::build(ModelConfig::tiny(21));
            let mut cfg = ScanConfig::default();
            cfg.fanout.shards_per_protocol = shards;
            let mut s = Scanner::new(model, cfg);
            let multi = s.scan_battery(&targets, &battery);
            for r in multi.by_protocol.values() {
                assert_eq!(r.sent, 37, "shards={shards}");
            }
        }
    }

    #[test]
    fn virtual_time_advances_with_rate() {
        let model = InternetModel::build(ModelConfig::tiny(21));
        let mut s = Scanner::new(
            model,
            ScanConfig {
                rate_pps: 1000,
                cooldown: Duration::from_secs(1),
                ..ScanConfig::default()
            },
        );
        let p48 = s.network_mut().population.special.cdn_hook_48s[0];
        let targets: Vec<Ipv6Addr> = (0..100u64)
            .map(|i| expanse_addr::keyed_random_addr(p48, i))
            .collect();
        let before = s.now();
        s.scan(&targets, &IcmpEchoModule);
        let elapsed = s.now() - before;
        // 100 probes at 1000 pps = 0.1 s + 1 s cooldown.
        assert_eq!(elapsed, Duration::from_millis(1100));
    }
}
