//! The scan loop: permute targets, rate-limit sends, collect and
//! validate replies.

use crate::blacklist::Blacklist;
use crate::module::ProbeModule;
use crate::permute::Permutation;
use crate::results::{MultiScanResult, ProbeReply, ScanResult};
use crate::validate::Validator;
use expanse_netsim::{Duration, EventQueue, Network, Time};
use expanse_packet::{Datagram, Protocol};
use std::net::Ipv6Addr;

/// Scanner configuration.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Source address probes are sent from.
    pub src: Ipv6Addr,
    /// Probes per (virtual) second.
    pub rate_pps: u64,
    /// Scan secret (drives validation and the target permutation).
    pub seed: u64,
    /// How long to keep listening after the last probe.
    pub cooldown: Duration,
    /// Shard selection `(shard, total)`, zmap's `--shard/--shards`.
    pub shard: (u64, u64),
    /// Never-probe prefixes (§10.1 scanning ethics).
    pub blacklist: Blacklist,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            src: "2001:db8:ffff::1".parse().expect("valid vantage"),
            rate_pps: 100_000,
            seed: 0x5ca9,
            cooldown: Duration::from_secs(5),
            shard: (0, 1),
            blacklist: Blacklist::new(),
        }
    }
}

/// A sans-IO scanner bound to a network.
pub struct Scanner<N: Network> {
    net: N,
    cfg: ScanConfig,
    clock: Time,
}

impl<N: Network> Scanner<N> {
    /// Create a new instance.
    pub fn new(net: N, cfg: ScanConfig) -> Self {
        Scanner {
            net,
            cfg,
            clock: Time::ZERO,
        }
    }

    /// Access the underlying network (e.g. to advance model days).
    pub fn network_mut(&mut self) -> &mut N {
        &mut self.net
    }

    /// Shared access to the underlying network.
    pub fn network(&self) -> &N {
        &self.net
    }

    /// The scan configuration.
    pub fn config(&self) -> &ScanConfig {
        &self.cfg
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.clock
    }

    /// Scan `targets` with one module. Probes are sent in permuted order
    /// at the configured rate; replies are validated statelessly.
    pub fn scan(&mut self, targets: &[Ipv6Addr], module: &dyn ProbeModule) -> ScanResult {
        let validator = Validator::new(self.cfg.seed);
        let mut result = ScanResult::new(module.protocol());
        if targets.is_empty() {
            return result;
        }
        let perm = Permutation::new(targets.len() as u64, self.cfg.seed);
        let gap = Duration(1_000_000_000 / self.cfg.rate_pps.max(1));
        let mut rx: EventQueue<Vec<u8>> = EventQueue::new();
        let (shard, shards) = self.cfg.shard;

        for idx in perm.shard(shard, shards) {
            let dst = targets[idx as usize];
            if self.cfg.blacklist.contains(dst) {
                result.blacklisted += 1;
                continue;
            }
            let probe = module.build(self.cfg.src, dst, &validator);
            result.sent += 1;
            for d in self.net.inject(self.clock, &probe.emit()) {
                rx.push(d.at, d.frame);
            }
            self.clock += gap;
            // Drain replies that have arrived by now.
            while let Some((at, frame)) = rx.pop_due(self.clock) {
                Self::receive(&mut result, module, &validator, at, &frame);
            }
        }
        // Cooldown drain.
        let deadline = self.clock + self.cfg.cooldown;
        while let Some((at, frame)) = rx.pop_due(deadline) {
            Self::receive(&mut result, module, &validator, at, &frame);
        }
        self.clock = deadline;
        result
    }

    fn receive(
        result: &mut ScanResult,
        module: &dyn ProbeModule,
        validator: &Validator,
        at: Time,
        frame: &[u8],
    ) {
        result.received += 1;
        let Ok((hdr, transport)) = Datagram::parse_transport(frame) else {
            result.malformed += 1;
            return;
        };
        let Some((target, kind)) = module.classify(&hdr, &transport, validator) else {
            result.unvalidated += 1;
            return;
        };
        let reply = ProbeReply {
            target,
            from: hdr.src,
            at,
            ttl: hdr.hop_limit,
            kind,
        };
        // First reply wins (zmap dedup); duplicates are counted.
        if let std::collections::hash_map::Entry::Vacant(e) = result.replies.entry(target) {
            e.insert(reply);
        } else {
            result.duplicates += 1;
        }
    }

    /// Run the paper's whole §6 battery over `targets`: one pass per
    /// protocol, merged per-address.
    pub fn scan_battery(
        &mut self,
        targets: &[Ipv6Addr],
        modules: &[Box<dyn ProbeModule>],
    ) -> MultiScanResult {
        let mut multi = MultiScanResult::default();
        for m in modules {
            let r = self.scan(targets, m.as_ref());
            multi.merge(r);
        }
        multi
    }
}

/// Convenience: is the reply a positive service answer?
pub fn positive(reply: &ProbeReply) -> bool {
    reply.kind.is_positive()
}

/// Derive the per-protocol responsive sets from a battery result.
pub fn responsive_sets(multi: &MultiScanResult) -> Vec<(Protocol, Vec<Ipv6Addr>)> {
    Protocol::ALL
        .iter()
        .map(|p| {
            let mut v: Vec<Ipv6Addr> = multi
                .by_protocol
                .get(p)
                .map(|r| {
                    r.replies
                        .values()
                        .filter(|rep| rep.kind.is_positive())
                        .map(|rep| rep.target)
                        .collect()
                })
                .unwrap_or_default();
            v.sort();
            (*p, v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{IcmpEchoModule, ReplyKind, TcpSynModule};
    use expanse_model::{InternetModel, ModelConfig};

    fn scanner() -> Scanner<InternetModel> {
        let model = InternetModel::build(ModelConfig::tiny(21));
        Scanner::new(model, ScanConfig::default())
    }

    #[test]
    fn scans_aliased_prefix_fully() {
        let mut s = scanner();
        let p48 = s.network_mut().population.special.cdn_hook_48s[0];
        let targets: Vec<Ipv6Addr> = (0..50u64)
            .map(|i| expanse_addr::keyed_random_addr(p48, i))
            .collect();
        let r = s.scan(&targets, &IcmpEchoModule);
        assert_eq!(r.sent, 50);
        // Aliased: nearly everything answers (minus base loss).
        assert!(r.replies.len() >= 40, "{} replies", r.replies.len());
        assert!(r.replies.values().all(|rep| rep.kind.is_positive()));
        assert_eq!(r.malformed, 0);
        assert_eq!(r.unvalidated, 0);
    }

    #[test]
    fn ghost_targets_no_response() {
        let mut s = scanner();
        // Unrouted space.
        let targets: Vec<Ipv6Addr> = (0..20u64)
            .map(|i| expanse_addr::u128_to_addr((0x3fffu128 << 112) | u128::from(i)))
            .collect();
        let r = s.scan(&targets, &IcmpEchoModule);
        assert_eq!(r.sent, 20);
        assert!(r.replies.is_empty());
    }

    #[test]
    fn tcp_scan_of_alias_returns_synacks() {
        let mut s = scanner();
        let p48 = s.network_mut().population.special.cdn_hook_48s[1];
        let targets: Vec<Ipv6Addr> = (0..30u64)
            .map(|i| expanse_addr::keyed_random_addr(p48, i))
            .collect();
        let r = s.scan(&targets, &TcpSynModule::with_synopt(80));
        assert!(r.replies.len() >= 20, "{}", r.replies.len());
        for rep in r.replies.values() {
            match &rep.kind {
                ReplyKind::SynAck(info) => {
                    assert!(!info.options_text.is_empty());
                }
                other => panic!("expected SYN-ACK, got {other:?}"),
            }
        }
    }

    #[test]
    fn shards_cover_disjoint_targets() {
        let model = InternetModel::build(ModelConfig::tiny(21));
        let p48 = model.population.special.cdn_hook_48s[0];
        let targets: Vec<Ipv6Addr> = (0..40u64)
            .map(|i| expanse_addr::keyed_random_addr(p48, i))
            .collect();

        let mut sent_total = 0;
        for shard in 0..3u64 {
            let model = InternetModel::build(ModelConfig::tiny(21));
            let mut s = Scanner::new(
                model,
                ScanConfig {
                    shard: (shard, 3),
                    ..ScanConfig::default()
                },
            );
            let r = s.scan(&targets, &IcmpEchoModule);
            sent_total += r.sent;
        }
        assert_eq!(sent_total, 40);
    }

    #[test]
    fn battery_merges_protocols() {
        let mut s = scanner();
        let p48 = s.network_mut().population.special.cdn_hook_48s[0];
        let targets: Vec<Ipv6Addr> = (0..20u64)
            .map(|i| expanse_addr::keyed_random_addr(p48, i))
            .collect();
        let multi = s.scan_battery(&targets, &crate::module::standard_battery());
        // Aliased CDN hooks answer ICMP + TCP80 + TCP443 but not DNS.
        let sets = responsive_sets(&multi);
        let get = |p: Protocol| {
            sets.iter()
                .find(|(q, _)| *q == p)
                .map(|(_, v)| v.len())
                .unwrap_or(0)
        };
        assert!(get(Protocol::Icmp) >= 15);
        assert!(get(Protocol::Tcp80) >= 15);
        assert_eq!(get(Protocol::Udp53), 0);
        // Per-address protocol sets populated.
        let any = multi.responsive.iter().next().unwrap();
        assert!(any.1.len() >= 2, "{:?}", any);
    }

    #[test]
    fn virtual_time_advances_with_rate() {
        let model = InternetModel::build(ModelConfig::tiny(21));
        let mut s = Scanner::new(
            model,
            ScanConfig {
                rate_pps: 1000,
                cooldown: Duration::from_secs(1),
                ..ScanConfig::default()
            },
        );
        let p48 = s.network_mut().population.special.cdn_hook_48s[0];
        let targets: Vec<Ipv6Addr> = (0..100u64)
            .map(|i| expanse_addr::keyed_random_addr(p48, i))
            .collect();
        let before = s.now();
        s.scan(&targets, &IcmpEchoModule);
        let elapsed = s.now() - before;
        // 100 probes at 1000 pps = 0.1 s + 1 s cooldown.
        assert_eq!(elapsed, Duration::from_millis(1100));
    }
}
