//! Probe modules: one per scanned service (zmap's `--probe-module`).

use crate::validate::Validator;
use expanse_packet::{
    dns, quic, Datagram, Icmpv6Message, Protocol, TcpFlags, TcpSegment, Transport, UdpDatagram,
};
use std::net::Ipv6Addr;

/// Information extracted from a TCP SYN-ACK, used by APD fingerprinting
/// (§5.4 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynAckInfo {
    /// Options text.
    pub options_text: String,
    /// Maximum segment size option value.
    pub mss: Option<u16>,
    /// Window-scale option value.
    pub wscale: Option<u8>,
    /// Advertised receive window.
    pub window: u16,
    /// (tsval, tsecr) if the peer sent timestamps.
    pub timestamps: Option<(u32, u32)>,
}

/// Classified probe reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyKind {
    /// ICMPv6 echo reply (positive).
    EchoReply,
    /// TCP SYN-ACK with its §5.4 fingerprint fields (positive).
    SynAck(SynAckInfo),
    /// RST(-ACK): host alive, port closed. Recorded, not "responsive".
    Rst,
    /// Dnsresponse.
    DnsResponse {
        /// DNS response code (0 = NOERROR, 3 = NXDOMAIN).
        rcode: u8,
        /// Answers.
        answers: u16,
    },
    /// Quicversionnegotiation.
    QuicVersionNegotiation {
        /// Supported QUIC versions advertised by the server.
        versions: Vec<u32>,
    },
    /// ICMPv6 destination unreachable (port unreachable etc.).
    Unreachable {
        /// Code.
        code: u8,
    },
}

impl ReplyKind {
    /// Does this reply make the target "responsive" in the paper's sense
    /// (a positive service answer, not an error indication)?
    pub fn is_positive(&self) -> bool {
        matches!(
            self,
            ReplyKind::EchoReply
                | ReplyKind::SynAck(_)
                | ReplyKind::DnsResponse { .. }
                | ReplyKind::QuicVersionNegotiation { .. }
        )
    }
}

/// A probe module builds probes for targets and classifies replies.
pub trait ProbeModule: Send + Sync {
    /// Which service this module scans.
    fn protocol(&self) -> Protocol;

    /// Build the probe datagram for `dst`.
    fn build(&self, src: Ipv6Addr, dst: Ipv6Addr, v: &Validator) -> Datagram;

    /// Classify a delivered frame: `Some((target, kind, ttl))` if the
    /// frame is a valid reply for this module under validator `v`.
    fn classify(
        &self,
        hdr: &expanse_packet::Ipv6Header,
        transport: &Transport,
        v: &Validator,
    ) -> Option<(Ipv6Addr, ReplyKind)>;
}

/// ICMPv6 echo module.
#[derive(Debug, Clone, Copy, Default)]
pub struct IcmpEchoModule;

impl ProbeModule for IcmpEchoModule {
    fn protocol(&self) -> Protocol {
        Protocol::Icmp
    }

    fn build(&self, src: Ipv6Addr, dst: Ipv6Addr, v: &Validator) -> Datagram {
        let f = v.fields(dst);
        Datagram::icmpv6(
            src,
            dst,
            Datagram::DEFAULT_HOP_LIMIT,
            Icmpv6Message::EchoRequest {
                ident: f.ident,
                seq: f.seq,
                payload: b"expanse-probe".to_vec(),
            },
        )
    }

    fn classify(
        &self,
        hdr: &expanse_packet::Ipv6Header,
        transport: &Transport,
        v: &Validator,
    ) -> Option<(Ipv6Addr, ReplyKind)> {
        match transport {
            Transport::Icmpv6(Icmpv6Message::EchoReply { ident, seq, .. }) => {
                // The reply's source is the target we probed.
                if v.check_echo(hdr.src, *ident, *seq) {
                    Some((hdr.src, ReplyKind::EchoReply))
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

/// TCP SYN module (ports 80/443), optionally with the §5.4
/// fingerprinting option set (`MSS-SACK-TS-N-WS`, MSS=WS=1).
#[derive(Debug, Clone, Copy)]
pub struct TcpSynModule {
    /// Port.
    pub port: u16,
    /// With options.
    pub with_options: bool,
}

impl TcpSynModule {
    /// Create a new instance.
    pub fn new(port: u16) -> Self {
        TcpSynModule {
            port,
            with_options: false,
        }
    }

    /// The `synopt` fingerprinting variant.
    pub fn with_synopt(port: u16) -> Self {
        TcpSynModule {
            port,
            with_options: true,
        }
    }
}

impl ProbeModule for TcpSynModule {
    fn protocol(&self) -> Protocol {
        match self.port {
            443 => Protocol::Tcp443,
            _ => Protocol::Tcp80,
        }
    }

    fn build(&self, src: Ipv6Addr, dst: Ipv6Addr, v: &Validator) -> Datagram {
        let f = v.fields(dst);
        let seg = if self.with_options {
            TcpSegment::syn_with_options(f.src_port, self.port, f.tcp_seq, f.tcp_seq ^ 0x5c5c)
        } else {
            TcpSegment::syn(f.src_port, self.port, f.tcp_seq)
        };
        Datagram::tcp(src, dst, Datagram::DEFAULT_HOP_LIMIT, &seg)
    }

    fn classify(
        &self,
        hdr: &expanse_packet::Ipv6Header,
        transport: &Transport,
        v: &Validator,
    ) -> Option<(Ipv6Addr, ReplyKind)> {
        let Transport::Tcp(seg) = transport else {
            return None;
        };
        if seg.src_port != self.port || !v.check_tcp(hdr.src, seg.dst_port, seg.ack) {
            return None;
        }
        if seg.flags.contains(TcpFlags::RST) {
            return Some((hdr.src, ReplyKind::Rst));
        }
        if seg.flags.contains(TcpFlags::SYN_ACK) {
            let info = SynAckInfo {
                options_text: seg.options_text(),
                mss: seg.mss(),
                wscale: seg.window_scale(),
                window: seg.window,
                timestamps: seg.timestamps(),
            };
            return Some((hdr.src, ReplyKind::SynAck(info)));
        }
        None
    }
}

/// UDP/53 DNS module: sends an AAAA query; any well-formed response
/// counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct DnsModule;

impl ProbeModule for DnsModule {
    fn protocol(&self) -> Protocol {
        Protocol::Udp53
    }

    fn build(&self, src: Ipv6Addr, dst: Ipv6Addr, v: &Validator) -> Datagram {
        let f = v.fields(dst);
        let q = dns::DnsQuery::new(f.ident, "ipv6.expanse.example.com", dns::qtype::AAAA);
        let u = UdpDatagram::new(f.src_port, 53, q.emit());
        Datagram::udp(src, dst, Datagram::DEFAULT_HOP_LIMIT, &u)
    }

    fn classify(
        &self,
        hdr: &expanse_packet::Ipv6Header,
        transport: &Transport,
        v: &Validator,
    ) -> Option<(Ipv6Addr, ReplyKind)> {
        match transport {
            Transport::Udp(u) => {
                if u.src_port != 53 || !v.check_udp(hdr.src, u.dst_port) {
                    return None;
                }
                let h = dns::DnsHeader::parse(&u.payload).ok()?;
                if !h.qr || h.id != v.fields(hdr.src).ident {
                    return None;
                }
                Some((
                    hdr.src,
                    ReplyKind::DnsResponse {
                        rcode: h.rcode,
                        answers: h.ancount,
                    },
                ))
            }
            Transport::Icmpv6(Icmpv6Message::DestUnreachable { code, invoking }) => {
                // Port unreachable for our own probe: extract the original
                // destination from the invoking packet.
                let orig = expanse_packet::Ipv6Header::parse(invoking).ok()?;
                if v.fields(orig.dst).src_port
                    == u16::from_be_bytes([*invoking.get(40)?, *invoking.get(41)?])
                {
                    Some((orig.dst, ReplyKind::Unreachable { code: *code }))
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

/// UDP/443 QUIC module: greasing-version Initial; a Version Negotiation
/// reply counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuicModule;

impl ProbeModule for QuicModule {
    fn protocol(&self) -> Protocol {
        Protocol::Udp443
    }

    fn build(&self, src: Ipv6Addr, dst: Ipv6Addr, v: &Validator) -> Datagram {
        let f = v.fields(dst);
        let dcid = f.tcp_seq.to_be_bytes();
        let scid = f.ident.to_be_bytes();
        let init = quic::QuicLongHeader::initial(&dcid, &scid);
        let u = UdpDatagram::new(f.src_port, 443, init);
        Datagram::udp(src, dst, Datagram::DEFAULT_HOP_LIMIT, &u)
    }

    fn classify(
        &self,
        hdr: &expanse_packet::Ipv6Header,
        transport: &Transport,
        v: &Validator,
    ) -> Option<(Ipv6Addr, ReplyKind)> {
        let Transport::Udp(u) = transport else {
            return None;
        };
        if u.src_port != 443 || !v.check_udp(hdr.src, u.dst_port) {
            return None;
        }
        let p = quic::QuicLongHeader::parse(&u.payload).ok()?;
        if !p.is_version_negotiation() {
            return None;
        }
        // The server must echo our source cid as its destination cid.
        let f = v.fields(hdr.src);
        if p.dcid != f.ident.to_be_bytes() {
            return None;
        }
        Some((
            hdr.src,
            ReplyKind::QuicVersionNegotiation {
                versions: p.supported_versions,
            },
        ))
    }
}

/// The paper's standard five-module battery (§6).
pub fn standard_battery() -> Vec<Box<dyn ProbeModule>> {
    vec![
        Box::new(IcmpEchoModule),
        Box::new(TcpSynModule::with_synopt(80)),
        Box::new(TcpSynModule::with_synopt(443)),
        Box::new(DnsModule),
        Box::new(QuicModule),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v() -> Validator {
        Validator::new(7)
    }

    fn pair() -> (Ipv6Addr, Ipv6Addr) {
        (
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
        )
    }

    #[test]
    fn icmp_build_and_classify_roundtrip() {
        let (src, dst) = pair();
        let m = IcmpEchoModule;
        let probe = m.build(src, dst, &v());
        assert_eq!(probe.header.dst, dst);
        // Simulate the target echoing back.
        let (hdr, t) = Datagram::parse_transport(&probe.emit()).unwrap();
        let Transport::Icmpv6(Icmpv6Message::EchoRequest {
            ident,
            seq,
            payload,
        }) = t
        else {
            panic!("not an echo request");
        };
        let reply = Datagram::icmpv6(
            dst,
            src,
            60,
            Icmpv6Message::EchoReply {
                ident,
                seq,
                payload,
            },
        );
        let (rhdr, rt) = Datagram::parse_transport(&reply.emit()).unwrap();
        let (target, kind) = m.classify(&rhdr, &rt, &v()).unwrap();
        assert_eq!(target, dst);
        assert_eq!(kind, ReplyKind::EchoReply);
        assert_eq!(hdr.src, src);
    }

    #[test]
    fn icmp_rejects_wrong_ident() {
        let (src, dst) = pair();
        let reply = Datagram::icmpv6(
            dst,
            src,
            60,
            Icmpv6Message::EchoReply {
                ident: 0xdead,
                seq: 0xbeef,
                payload: vec![],
            },
        );
        let (rhdr, rt) = Datagram::parse_transport(&reply.emit()).unwrap();
        assert!(IcmpEchoModule.classify(&rhdr, &rt, &v()).is_none());
    }

    #[test]
    fn tcp_synack_classified_with_fingerprint() {
        let (src, dst) = pair();
        let m = TcpSynModule::with_synopt(80);
        let probe = m.build(src, dst, &v());
        let (_, t) = Datagram::parse_transport(&probe.emit()).unwrap();
        let Transport::Tcp(pseg) = t else { panic!() };
        assert_eq!(pseg.options_text(), "MSS-SACK-TS-N-WS");
        assert_eq!(pseg.mss(), Some(1));
        // Build a SYN-ACK echoing correctly.
        let reply_seg = TcpSegment {
            src_port: 80,
            dst_port: pseg.src_port,
            seq: 1,
            ack: pseg.seq.wrapping_add(1),
            flags: TcpFlags::SYN_ACK,
            window: 65535,
            urgent: 0,
            options: vec![
                expanse_packet::TcpOption::Mss(1440),
                expanse_packet::TcpOption::SackPermitted,
            ],
            payload: vec![],
        };
        let reply = Datagram::tcp(dst, src, 60, &reply_seg);
        let (rhdr, rt) = Datagram::parse_transport(&reply.emit()).unwrap();
        let (target, kind) = m.classify(&rhdr, &rt, &v()).unwrap();
        assert_eq!(target, dst);
        match kind {
            ReplyKind::SynAck(info) => {
                assert_eq!(info.options_text, "MSS-SACK");
                assert_eq!(info.mss, Some(1440));
                assert_eq!(info.window, 65535);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tcp_rst_is_recorded_not_positive() {
        let (src, dst) = pair();
        let m = TcpSynModule::new(443);
        let f = v().fields(dst);
        let rst = TcpSegment {
            src_port: 443,
            dst_port: f.src_port,
            seq: 0,
            ack: f.tcp_seq.wrapping_add(1),
            flags: TcpFlags::RST_ACK,
            window: 0,
            urgent: 0,
            options: vec![],
            payload: vec![],
        };
        let reply = Datagram::tcp(dst, src, 60, &rst);
        let (rhdr, rt) = Datagram::parse_transport(&reply.emit()).unwrap();
        let (_, kind) = m.classify(&rhdr, &rt, &v()).unwrap();
        assert_eq!(kind, ReplyKind::Rst);
        assert!(!kind.is_positive());
    }

    #[test]
    fn wrong_ack_rejected() {
        let (src, dst) = pair();
        let m = TcpSynModule::new(80);
        let f = v().fields(dst);
        let seg = TcpSegment {
            src_port: 80,
            dst_port: f.src_port,
            seq: 1,
            ack: f.tcp_seq.wrapping_add(2), // off by one
            flags: TcpFlags::SYN_ACK,
            window: 1,
            urgent: 0,
            options: vec![],
            payload: vec![],
        };
        let reply = Datagram::tcp(dst, src, 60, &seg);
        let (rhdr, rt) = Datagram::parse_transport(&reply.emit()).unwrap();
        assert!(m.classify(&rhdr, &rt, &v()).is_none());
    }

    #[test]
    fn dns_response_classified() {
        let (src, dst) = pair();
        let m = DnsModule;
        let probe = m.build(src, dst, &v());
        let (_, t) = Datagram::parse_transport(&probe.emit()).unwrap();
        let Transport::Udp(u) = t else { panic!() };
        let resp = dns::build_response(&u.payload, 0, 1).unwrap();
        let reply = Datagram::udp(dst, src, 60, &UdpDatagram::new(53, u.src_port, resp));
        let (rhdr, rt) = Datagram::parse_transport(&reply.emit()).unwrap();
        let (target, kind) = m.classify(&rhdr, &rt, &v()).unwrap();
        assert_eq!(target, dst);
        assert_eq!(
            kind,
            ReplyKind::DnsResponse {
                rcode: 0,
                answers: 1
            }
        );
        assert!(kind.is_positive());
    }

    #[test]
    fn quic_version_negotiation_classified() {
        let (src, dst) = pair();
        let m = QuicModule;
        let probe = m.build(src, dst, &v());
        let (_, t) = Datagram::parse_transport(&probe.emit()).unwrap();
        let Transport::Udp(u) = t else { panic!() };
        let init = quic::QuicLongHeader::parse(&u.payload).unwrap();
        let vn = quic::QuicLongHeader::version_negotiation(&init.scid, &init.dcid, &[1]);
        let reply = Datagram::udp(dst, src, 60, &UdpDatagram::new(443, u.src_port, vn));
        let (rhdr, rt) = Datagram::parse_transport(&reply.emit()).unwrap();
        let (target, kind) = m.classify(&rhdr, &rt, &v()).unwrap();
        assert_eq!(target, dst);
        match kind {
            ReplyKind::QuicVersionNegotiation { versions } => assert_eq!(versions, vec![1]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn battery_covers_all_protocols() {
        let battery = standard_battery();
        let protos: Vec<Protocol> = battery.iter().map(|m| m.protocol()).collect();
        assert_eq!(protos, Protocol::ALL.to_vec());
    }
}
