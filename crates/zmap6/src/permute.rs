//! Pseudorandom target permutation.
//!
//! ZMap walks targets in a pseudorandom order so that probe load spreads
//! across networks instead of hammering one prefix sequentially (and so
//! that scans are stateless: position i of the permutation is computable
//! without storing per-target state). ZMap uses a multiplicative cyclic
//! group mod p; we use the other standard construction — a four-round
//! Feistel network over the index space with cycle-walking — which gives
//! the same properties (full permutation, O(1) per step, keyed) without
//! needing primality searches.

use expanse_addr::fanout::splitmix64;

/// A keyed permutation over `0..n`.
#[derive(Debug, Clone, Copy)]
pub struct Permutation {
    n: u64,
    /// Feistel domain: smallest even-bit-width power of two ≥ n.
    half_bits: u32,
    keys: [u64; 4],
}

impl Permutation {
    /// Build a permutation over `0..n` keyed by `seed`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n > 0, "empty permutation domain");
        // Width in bits, rounded up to even so it splits into two halves.
        let bits = (64 - n.leading_zeros()).max(2);
        let bits = bits + (bits & 1);
        Permutation {
            n,
            half_bits: bits / 2,
            keys: [
                splitmix64(seed ^ 0xf157_0001),
                splitmix64(seed ^ 0xf157_0002),
                splitmix64(seed ^ 0xf157_0003),
                splitmix64(seed ^ 0xf157_0004),
            ],
        }
    }

    /// Domain size.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Is the domain empty? (Never true; constructor forbids it.)
    pub fn is_empty(&self) -> bool {
        false
    }

    #[inline]
    fn feistel(&self, x: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut l = x >> self.half_bits;
        let mut r = x & mask;
        for k in self.keys {
            let f = splitmix64(r ^ k) & mask;
            let nl = r;
            r = l ^ f;
            l = nl;
        }
        (l << self.half_bits) | r
    }

    /// The element at position `i` of the permutation (cycle-walking:
    /// re-encrypt until the value lands inside the domain).
    ///
    /// # Panics
    /// Panics if `i >= n`.
    pub fn at(&self, i: u64) -> u64 {
        assert!(i < self.n, "position {i} out of domain {}", self.n);
        let mut x = self.feistel(i);
        while x >= self.n {
            x = self.feistel(x);
        }
        x
    }

    /// Iterate the full permutation.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.n).map(move |i| self.at(i))
    }

    /// Iterate one shard of `total` (round-robin split, zmap's
    /// `--shards` / `--shard`).
    ///
    /// # Panics
    /// Panics if `shard >= total` or `total == 0`.
    pub fn shard(&self, shard: u64, total: u64) -> impl Iterator<Item = u64> + '_ {
        assert!(total > 0 && shard < total, "bad shard {shard}/{total}");
        (0..self.n)
            .filter(move |i| i % total == shard)
            .map(move |i| self.at(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn is_a_permutation() {
        for n in [1u64, 2, 7, 16, 100, 1000, 4097] {
            let p = Permutation::new(n, 42);
            let seen: HashSet<u64> = p.iter().collect();
            assert_eq!(seen.len() as u64, n, "n={n}");
            assert!(seen.iter().all(|&x| x < n), "n={n}");
        }
    }

    #[test]
    fn keyed() {
        let a: Vec<u64> = Permutation::new(1000, 1).iter().collect();
        let b: Vec<u64> = Permutation::new(1000, 2).iter().collect();
        assert_ne!(a, b);
        let c: Vec<u64> = Permutation::new(1000, 1).iter().collect();
        assert_eq!(a, c);
    }

    #[test]
    fn looks_shuffled() {
        // Consecutive outputs should not be consecutive integers.
        let p = Permutation::new(10_000, 7);
        let out: Vec<u64> = p.iter().take(100).collect();
        let consecutive = out
            .windows(2)
            .filter(|w| w[1] == w[0] + 1 || w[0] == w[1] + 1)
            .count();
        assert!(consecutive < 5, "too sequential: {consecutive}");
    }

    #[test]
    fn shards_partition_the_domain() {
        let p = Permutation::new(997, 3);
        let mut all: Vec<u64> = Vec::new();
        for s in 0..4 {
            all.extend(p.shard(s, 4));
        }
        all.sort_unstable();
        let want: Vec<u64> = (0..997).collect();
        assert_eq!(all, want);
    }

    #[test]
    #[should_panic(expected = "empty permutation")]
    fn zero_domain_panics() {
        Permutation::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn out_of_domain_panics() {
        Permutation::new(10, 0).at(10);
    }
}
