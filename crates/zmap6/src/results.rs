//! Scan result containers.

use crate::module::ReplyKind;
use expanse_addr::{AddrId, AddrMap};
use expanse_netsim::Time;
use expanse_packet::{ProtoSet, Protocol};
use std::collections::HashMap;
use std::net::Ipv6Addr;

/// One validated reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeReply {
    /// The probed target this reply validates for.
    pub target: Ipv6Addr,
    /// The reply's actual source address (≠ target for off-path answers).
    pub from: Ipv6Addr,
    /// Virtual time of the frame.
    pub at: Time,
    /// Hop limit observed at the vantage (the iTTL input of §5.4).
    pub ttl: u8,
    /// What kind of host this address is.
    pub kind: ReplyKind,
}

/// Result of scanning one protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanResult {
    /// The scanned protocol.
    pub protocol: Protocol,
    /// Probes sent.
    pub sent: u64,
    /// Targets suppressed by the blacklist (never probed).
    pub blacklisted: u64,
    /// Frames received.
    pub received: u64,
    /// Frames that failed to parse.
    pub malformed: u64,
    /// Frames that failed stateless validation.
    pub unvalidated: u64,
    /// Duplicate replies discarded.
    pub duplicates: u64,
    /// First validated reply per target.
    pub replies: HashMap<Ipv6Addr, ProbeReply>,
}

impl ScanResult {
    /// Create a new instance.
    pub fn new(protocol: Protocol) -> Self {
        ScanResult {
            protocol,
            sent: 0,
            blacklisted: 0,
            received: 0,
            malformed: 0,
            unvalidated: 0,
            duplicates: 0,
            replies: HashMap::new(),
        }
    }

    /// Targets with a positive service answer.
    pub fn responsive(&self) -> impl Iterator<Item = Ipv6Addr> + '_ {
        self.replies
            .values()
            .filter(|r| r.kind.is_positive())
            .map(|r| r.target)
    }

    /// Count of positive responders.
    pub fn responsive_count(&self) -> usize {
        self.responsive().count()
    }

    /// Hit rate: positive responders / probes sent.
    pub fn hit_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.responsive_count() as f64 / self.sent as f64
        }
    }

    /// Fold a same-protocol sub-shard result in: counters add, reply
    /// maps union. Sub-shards partition the *positions* of the target
    /// list, so for duplicate-free target lists the reply maps are
    /// disjoint; if a target appears twice and its replies land in two
    /// shards, the first-merged shard wins and the other reply counts
    /// as a duplicate — mirroring the unsharded scan's first-reply-wins
    /// accounting (`received == replies + duplicates + malformed +
    /// unvalidated` stays intact).
    ///
    /// # Panics
    /// Panics if `part` scanned a different protocol.
    pub fn absorb_shard(&mut self, part: ScanResult) {
        assert_eq!(
            self.protocol, part.protocol,
            "absorb_shard across protocols"
        );
        self.sent += part.sent;
        self.blacklisted += part.blacklisted;
        self.received += part.received;
        self.malformed += part.malformed;
        self.unvalidated += part.unvalidated;
        self.duplicates += part.duplicates;
        for (target, reply) in part.replies {
            if let std::collections::hash_map::Entry::Vacant(e) = self.replies.entry(target) {
                e.insert(reply);
            } else {
                self.duplicates += 1;
            }
        }
    }
}

/// Merged results across protocols (the §6 battery).
#[derive(Debug, Clone, Default)]
pub struct MultiScanResult {
    /// Per-protocol scan results.
    pub by_protocol: HashMap<Protocol, ScanResult>,
    /// Per-address positive protocol set: a columnar interned map
    /// (address column + `ProtoSet` column) instead of a per-day
    /// `HashMap<Ipv6Addr, ProtoSet>` rebuild. Its equality is
    /// content-based, so executors that merge in different orders still
    /// compare equal.
    pub responsive: AddrMap<ProtoSet>,
    /// Caller-domain ids of the responsive addresses, parallel to
    /// `responsive`'s insertion order: entry *i* is the resolved id of
    /// the *i*-th distinct responder. Filled only by
    /// [`MultiScanResult::merge_resolved`] (the pipeline resolves
    /// against its hitlist during the merge itself, instead of a
    /// per-responder hash lookup afterwards); stays empty under plain
    /// [`MultiScanResult::merge`]. Excluded from equality — it mirrors
    /// `responsive`'s keys through an external table, adding no
    /// information of its own.
    pub responsive_ids: Vec<AddrId>,
}

impl MultiScanResult {
    /// Fold one protocol scan in.
    pub fn merge(&mut self, r: ScanResult) {
        self.merge_impl(r, None);
    }

    /// [`MultiScanResult::merge`], resolving each *newly* responsive
    /// address to a caller-domain id (pushed onto
    /// [`MultiScanResult::responsive_ids`] in `responsive` insertion
    /// order). Mixing resolved and plain merges on one result would
    /// desync the two columns, so don't.
    pub fn merge_resolved(&mut self, r: ScanResult, resolve: &mut dyn FnMut(Ipv6Addr) -> AddrId) {
        self.merge_impl(r, Some(resolve));
    }

    fn merge_impl(
        &mut self,
        r: ScanResult,
        mut resolve: Option<&mut dyn FnMut(Ipv6Addr) -> AddrId>,
    ) {
        for reply in r.replies.values() {
            if reply.kind.is_positive() {
                let (_, new, e) = self.responsive.entry_or_full(reply.target, ProtoSet::EMPTY);
                *e = e.with(r.protocol);
                if new {
                    if let Some(resolve) = resolve.as_deref_mut() {
                        self.responsive_ids.push(resolve(reply.target));
                    }
                }
            }
        }
        self.by_protocol.insert(r.protocol, r);
    }

    /// The day's `(id, protocols)` pairs in `responsive` insertion
    /// order, zipping the resolved id column against the protocol-set
    /// column.
    ///
    /// # Panics
    /// Panics if the result was not built with
    /// [`MultiScanResult::merge_resolved`] throughout (the columns must
    /// be parallel).
    pub fn resolved_pairs(&self) -> impl Iterator<Item = (AddrId, ProtoSet)> + '_ {
        assert_eq!(
            self.responsive_ids.len(),
            self.responsive.len(),
            "responsive_ids out of step with the responsive map"
        );
        self.responsive_ids
            .iter()
            .copied()
            .zip(self.responsive.values().copied())
    }

    /// Addresses answering at least one protocol.
    pub fn responsive_addrs(&self) -> Vec<Ipv6Addr> {
        self.responsive.sorted_addrs()
    }

    /// Move the merged responsive map out (the per-protocol results
    /// stay). The daily pipeline hands it to the snapshot instead of
    /// cloning; compute [`MultiScanResult::digest`] first if the full
    /// digest is wanted.
    pub fn take_responsive(&mut self) -> AddrMap<ProtoSet> {
        std::mem::take(&mut self.responsive)
    }

    /// Total probes sent across protocols.
    pub fn total_sent(&self) -> u64 {
        self.by_protocol.values().map(|r| r.sent).sum()
    }

    /// A canonical FNV-1a digest over every field of every reply, walked
    /// in sorted order so hash-map iteration order cannot leak in. The
    /// encoding is injective (variable-length fields are
    /// length-prefixed), so equal results always produce equal digests
    /// and unequal results collide only at ordinary 64-bit hash odds;
    /// the fan-out determinism guard and the throughput bench compare
    /// this.
    /// Allocation-free per reply (runs once per virtual day over the
    /// whole merged battery, so it must stay off the daily loop's back).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        let mut protocols: Vec<Protocol> = self.by_protocol.keys().copied().collect();
        protocols.sort();
        // Count-prefix every list so the byte stream is self-delimiting
        // (injectivity must not lean on unenforced counter invariants).
        h.eat(&(protocols.len() as u64).to_le_bytes());
        for p in protocols {
            let r = &self.by_protocol[&p];
            h.eat(&[p.index() as u8]);
            for n in [
                r.sent,
                r.blacklisted,
                r.received,
                r.malformed,
                r.unvalidated,
                r.duplicates,
            ] {
                h.eat(&n.to_le_bytes());
            }
            let mut targets: Vec<Ipv6Addr> = r.replies.keys().copied().collect();
            targets.sort();
            h.eat(&(targets.len() as u64).to_le_bytes());
            for t in targets {
                let reply = &r.replies[&t];
                h.eat(&t.octets());
                h.eat(&reply.from.octets());
                h.eat(&reply.at.0.to_le_bytes());
                h.eat(&[reply.ttl]);
                h.eat_kind(&reply.kind);
            }
        }
        let addrs = self.responsive.sorted_addrs();
        h.eat(&(addrs.len() as u64).to_le_bytes());
        for a in addrs {
            h.eat(&a.octets());
            h.eat(&[self.responsive.get(a).expect("sorted key present").0]);
        }
        h.0
    }
}

/// Equality ignores [`MultiScanResult::responsive_ids`]: the id column
/// mirrors `responsive`'s keys through an external table, and merge
/// order (which is hash-map driven inside each protocol) may permute it
/// without changing the content the digest and the determinism guards
/// compare.
impl PartialEq for MultiScanResult {
    fn eq(&self, other: &Self) -> bool {
        self.by_protocol == other.by_protocol && self.responsive == other.responsive
    }
}

/// FNV-1a folding with a structural (allocation-free) [`ReplyKind`]
/// encoding: discriminant byte, then each field in declaration order,
/// `Option`s as a presence byte + payload.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Variable-length field: length-prefixed so adjacent fields cannot
    /// alias across different splits of the same byte stream.
    fn eat_var(&mut self, bytes: &[u8]) {
        self.eat(&(bytes.len() as u64).to_le_bytes());
        self.eat(bytes);
    }

    fn eat_kind(&mut self, kind: &ReplyKind) {
        match kind {
            ReplyKind::EchoReply => self.eat(&[0]),
            ReplyKind::SynAck(info) => {
                self.eat(&[1]);
                self.eat_var(info.options_text.as_bytes());
                match info.mss {
                    Some(v) => {
                        self.eat(&[1]);
                        self.eat(&v.to_le_bytes());
                    }
                    None => self.eat(&[0]),
                }
                match info.wscale {
                    Some(v) => self.eat(&[1, v]),
                    None => self.eat(&[0]),
                }
                self.eat(&info.window.to_le_bytes());
                match info.timestamps {
                    Some((tsval, tsecr)) => {
                        self.eat(&[1]);
                        self.eat(&tsval.to_le_bytes());
                        self.eat(&tsecr.to_le_bytes());
                    }
                    None => self.eat(&[0]),
                }
            }
            ReplyKind::Rst => self.eat(&[2]),
            ReplyKind::DnsResponse { rcode, answers } => {
                self.eat(&[3, *rcode]);
                self.eat(&answers.to_le_bytes());
            }
            ReplyKind::QuicVersionNegotiation { versions } => {
                self.eat(&[4]);
                self.eat(&(versions.len() as u64).to_le_bytes());
                for v in versions {
                    self.eat(&v.to_le_bytes());
                }
            }
            ReplyKind::Unreachable { code } => self.eat(&[5, *code]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reply(target: &str, kind: ReplyKind) -> ProbeReply {
        let t: Ipv6Addr = target.parse().unwrap();
        ProbeReply {
            target: t,
            from: t,
            at: Time::ZERO,
            ttl: 60,
            kind,
        }
    }

    #[test]
    fn hit_rate_counts_only_positive() {
        let mut r = ScanResult::new(Protocol::Tcp80);
        r.sent = 4;
        r.replies
            .insert("::1".parse().unwrap(), reply("::1", ReplyKind::Rst));
        r.replies.insert(
            "::2".parse().unwrap(),
            reply(
                "::2",
                ReplyKind::SynAck(crate::module::SynAckInfo {
                    options_text: "MSS".into(),
                    mss: Some(1440),
                    wscale: None,
                    window: 100,
                    timestamps: None,
                }),
            ),
        );
        assert_eq!(r.responsive_count(), 1);
        assert_eq!(r.hit_rate(), 0.25);
    }

    #[test]
    fn multi_merge_builds_protosets() {
        let mut m = MultiScanResult::default();
        let mut icmp = ScanResult::new(Protocol::Icmp);
        icmp.replies
            .insert("::1".parse().unwrap(), reply("::1", ReplyKind::EchoReply));
        m.merge(icmp);
        let mut dns = ScanResult::new(Protocol::Udp53);
        dns.replies.insert(
            "::1".parse().unwrap(),
            reply(
                "::1",
                ReplyKind::DnsResponse {
                    rcode: 0,
                    answers: 1,
                },
            ),
        );
        m.merge(dns);
        let set = *m.responsive.get("::1".parse().unwrap()).unwrap();
        assert!(set.contains(Protocol::Icmp));
        assert!(set.contains(Protocol::Udp53));
        assert_eq!(set.len(), 2);
        assert_eq!(m.responsive_addrs().len(), 1);
    }

    #[test]
    fn empty_hit_rate_zero() {
        assert_eq!(ScanResult::new(Protocol::Icmp).hit_rate(), 0.0);
    }
}
