//! Scan result containers.

use crate::module::ReplyKind;
use expanse_netsim::Time;
use expanse_packet::{ProtoSet, Protocol};
use std::collections::HashMap;
use std::net::Ipv6Addr;

/// One validated reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeReply {
    /// The probed target this reply validates for.
    pub target: Ipv6Addr,
    /// The reply's actual source address (≠ target for off-path answers).
    pub from: Ipv6Addr,
    /// Virtual time of the frame.
    pub at: Time,
    /// Hop limit observed at the vantage (the iTTL input of §5.4).
    pub ttl: u8,
    /// What kind of host this address is.
    pub kind: ReplyKind,
}

/// Result of scanning one protocol.
#[derive(Debug, Clone)]
pub struct ScanResult {
    /// The scanned protocol.
    pub protocol: Protocol,
    /// Probes sent.
    pub sent: u64,
    /// Targets suppressed by the blacklist (never probed).
    pub blacklisted: u64,
    /// Frames received.
    pub received: u64,
    /// Frames that failed to parse.
    pub malformed: u64,
    /// Frames that failed stateless validation.
    pub unvalidated: u64,
    /// Duplicate replies discarded.
    pub duplicates: u64,
    /// First validated reply per target.
    pub replies: HashMap<Ipv6Addr, ProbeReply>,
}

impl ScanResult {
    /// Create a new instance.
    pub fn new(protocol: Protocol) -> Self {
        ScanResult {
            protocol,
            sent: 0,
            blacklisted: 0,
            received: 0,
            malformed: 0,
            unvalidated: 0,
            duplicates: 0,
            replies: HashMap::new(),
        }
    }

    /// Targets with a positive service answer.
    pub fn responsive(&self) -> impl Iterator<Item = Ipv6Addr> + '_ {
        self.replies
            .values()
            .filter(|r| r.kind.is_positive())
            .map(|r| r.target)
    }

    /// Count of positive responders.
    pub fn responsive_count(&self) -> usize {
        self.responsive().count()
    }

    /// Hit rate: positive responders / probes sent.
    pub fn hit_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.responsive_count() as f64 / self.sent as f64
        }
    }
}

/// Merged results across protocols (the §6 battery).
#[derive(Debug, Clone, Default)]
pub struct MultiScanResult {
    /// Per-protocol scan results.
    pub by_protocol: HashMap<Protocol, ScanResult>,
    /// Per-address positive protocol set.
    pub responsive: HashMap<Ipv6Addr, ProtoSet>,
}

impl MultiScanResult {
    /// Fold one protocol scan in.
    pub fn merge(&mut self, r: ScanResult) {
        for reply in r.replies.values() {
            if reply.kind.is_positive() {
                let e = self
                    .responsive
                    .entry(reply.target)
                    .or_insert(ProtoSet::EMPTY);
                *e = e.with(r.protocol);
            }
        }
        self.by_protocol.insert(r.protocol, r);
    }

    /// Addresses answering at least one protocol.
    pub fn responsive_addrs(&self) -> Vec<Ipv6Addr> {
        let mut v: Vec<Ipv6Addr> = self.responsive.keys().copied().collect();
        v.sort();
        v
    }

    /// Total probes sent across protocols.
    pub fn total_sent(&self) -> u64 {
        self.by_protocol.values().map(|r| r.sent).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reply(target: &str, kind: ReplyKind) -> ProbeReply {
        let t: Ipv6Addr = target.parse().unwrap();
        ProbeReply {
            target: t,
            from: t,
            at: Time::ZERO,
            ttl: 60,
            kind,
        }
    }

    #[test]
    fn hit_rate_counts_only_positive() {
        let mut r = ScanResult::new(Protocol::Tcp80);
        r.sent = 4;
        r.replies
            .insert("::1".parse().unwrap(), reply("::1", ReplyKind::Rst));
        r.replies.insert(
            "::2".parse().unwrap(),
            reply(
                "::2",
                ReplyKind::SynAck(crate::module::SynAckInfo {
                    options_text: "MSS".into(),
                    mss: Some(1440),
                    wscale: None,
                    window: 100,
                    timestamps: None,
                }),
            ),
        );
        assert_eq!(r.responsive_count(), 1);
        assert_eq!(r.hit_rate(), 0.25);
    }

    #[test]
    fn multi_merge_builds_protosets() {
        let mut m = MultiScanResult::default();
        let mut icmp = ScanResult::new(Protocol::Icmp);
        icmp.replies
            .insert("::1".parse().unwrap(), reply("::1", ReplyKind::EchoReply));
        m.merge(icmp);
        let mut dns = ScanResult::new(Protocol::Udp53);
        dns.replies.insert(
            "::1".parse().unwrap(),
            reply("::1", ReplyKind::DnsResponse { rcode: 0, answers: 1 }),
        );
        m.merge(dns);
        let set = m.responsive[&"::1".parse::<Ipv6Addr>().unwrap()];
        assert!(set.contains(Protocol::Icmp));
        assert!(set.contains(Protocol::Udp53));
        assert_eq!(set.len(), 2);
        assert_eq!(m.responsive_addrs().len(), 1);
    }

    #[test]
    fn empty_hit_rate_zero() {
        assert_eq!(ScanResult::new(Protocol::Icmp).hit_rate(), 0.0);
    }
}
