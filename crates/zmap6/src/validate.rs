//! Stateless probe validation.
//!
//! ZMap keeps no per-target state: probe header fields (ICMP ident/seq,
//! TCP source port and sequence number, UDP source port, DNS id) are a
//! keyed hash of the destination. A reply validates iff the echoed fields
//! match the recomputed hash — off-path junk, stale replies, and
//! misdirected packets are rejected in O(1).

use expanse_addr::{addr_to_u128, fanout::splitmix64};
use std::net::Ipv6Addr;

/// Validation codec keyed by a scan secret.
#[derive(Debug, Clone, Copy)]
pub struct Validator {
    secret: u64,
}

/// Fields derived for one target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeFields {
    /// ICMP ident / DNS transaction id.
    pub ident: u16,
    /// ICMP sequence number.
    pub seq: u16,
    /// TCP/UDP ephemeral source port (32768..=61000 range).
    pub src_port: u16,
    /// TCP sequence number.
    pub tcp_seq: u32,
}

impl Validator {
    /// Create a new instance.
    pub fn new(secret: u64) -> Self {
        Validator { secret }
    }

    /// Hash of a destination under the scan secret.
    fn hash(&self, dst: Ipv6Addr) -> u64 {
        let v = addr_to_u128(dst);
        splitmix64(v as u64 ^ splitmix64((v >> 64) as u64 ^ self.secret))
    }

    /// The probe fields for `dst`.
    pub fn fields(&self, dst: Ipv6Addr) -> ProbeFields {
        let h = self.hash(dst);
        ProbeFields {
            ident: (h & 0xffff) as u16,
            seq: ((h >> 16) & 0xffff) as u16,
            src_port: 32768 + ((h >> 32) % 28233) as u16,
            tcp_seq: (h >> 24) as u32,
        }
    }

    /// Validate an ICMP echo reply's ident/seq against target `dst`.
    pub fn check_echo(&self, dst: Ipv6Addr, ident: u16, seq: u16) -> bool {
        let f = self.fields(dst);
        f.ident == ident && f.seq == seq
    }

    /// Validate a TCP reply: destination port must be our ephemeral port
    /// and the peer must acknowledge `tcp_seq + 1`.
    pub fn check_tcp(&self, dst: Ipv6Addr, dst_port: u16, ack: u32) -> bool {
        let f = self.fields(dst);
        f.src_port == dst_port && ack == f.tcp_seq.wrapping_add(1)
    }

    /// Validate a UDP reply's destination port.
    pub fn check_udp(&self, dst: Ipv6Addr, dst_port: u16) -> bool {
        self.fields(dst).src_port == dst_port
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn fields_deterministic_per_target() {
        let v = Validator::new(99);
        let a = v.fields(addr("2001:db8::1"));
        assert_eq!(a, v.fields(addr("2001:db8::1")));
        let b = v.fields(addr("2001:db8::2"));
        assert_ne!(a, b);
        assert!(a.src_port >= 32768);
    }

    #[test]
    fn echo_validation() {
        let v = Validator::new(1);
        let dst = addr("2001:db8::5");
        let f = v.fields(dst);
        assert!(v.check_echo(dst, f.ident, f.seq));
        assert!(!v.check_echo(dst, f.ident.wrapping_add(1), f.seq));
        // Fields of another target never validate for dst.
        let g = v.fields(addr("2001:db8::6"));
        assert!(!v.check_echo(dst, g.ident, g.seq) || (g.ident, g.seq) == (f.ident, f.seq));
    }

    #[test]
    fn tcp_validation() {
        let v = Validator::new(2);
        let dst = addr("2001:db8::7");
        let f = v.fields(dst);
        assert!(v.check_tcp(dst, f.src_port, f.tcp_seq.wrapping_add(1)));
        assert!(!v.check_tcp(dst, f.src_port, f.tcp_seq)); // wrong ack
        assert!(!v.check_tcp(dst, f.src_port.wrapping_add(1), f.tcp_seq.wrapping_add(1)));
    }

    #[test]
    fn secrets_differ() {
        let dst = addr("2001:db8::9");
        assert_ne!(Validator::new(1).fields(dst), Validator::new(2).fields(dst));
    }
}
