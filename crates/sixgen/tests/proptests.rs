//! Property tests for 6Gen region algebra and generation.

use expanse_addr::u128_to_addr;
use expanse_sixgen::{generate, grow_regions, Region, SixGenConfig};
use proptest::prelude::*;
use std::collections::HashSet;
use std::net::Ipv6Addr;

fn arb_addrs() -> impl Strategy<Value = Vec<Ipv6Addr>> {
    // Cluster seeds in a /64 with a few wild bits so regions form.
    proptest::collection::vec((0u8..4, 0u16..64), 1..60).prop_map(|specs| {
        specs
            .into_iter()
            .map(|(subnet, host)| {
                u128_to_addr(
                    (0x2001_0db8u128 << 96) | (u128::from(subnet) << 64) | u128::from(host),
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn regions_cover_their_seeds(seeds in arb_addrs()) {
        let regions = grow_regions(&seeds, &SixGenConfig::default());
        // Every (distinct) seed is inside at least one region.
        for s in &seeds {
            prop_assert!(
                regions.iter().any(|r| r.contains(*s)),
                "seed {s} not covered"
            );
        }
        // Region seed counts sum to the distinct seed count.
        let distinct: HashSet<&Ipv6Addr> = seeds.iter().collect();
        let total: usize = regions.iter().map(|r| r.seeds).sum();
        prop_assert_eq!(total, distinct.len());
    }

    #[test]
    fn grown_size_matches_actual_growth(seeds in arb_addrs()) {
        if seeds.len() < 2 {
            return Ok(());
        }
        let mut r = Region::of(seeds[0]);
        for s in &seeds[1..] {
            let predicted = r.grown_size(*s);
            r.grow(*s);
            prop_assert_eq!(r.size(), predicted);
        }
    }

    #[test]
    fn regions_sorted_by_density(seeds in arb_addrs()) {
        let regions = grow_regions(&seeds, &SixGenConfig::default());
        for w in regions.windows(2) {
            prop_assert!(w[0].density() >= w[1].density() - 1e-12);
        }
    }

    #[test]
    fn generation_members_and_budget(seeds in arb_addrs(), budget in 0usize..500) {
        let regions = grow_regions(&seeds, &SixGenConfig::default());
        let out = generate(&regions, budget);
        prop_assert!(out.len() <= budget);
        let set: HashSet<&Ipv6Addr> = out.iter().collect();
        prop_assert_eq!(set.len(), out.len(), "duplicates");
        for a in &out {
            prop_assert!(
                regions.iter().any(|r| r.contains(*a)),
                "{a} outside every region"
            );
        }
    }

    #[test]
    fn enumerate_cap_exact(seeds in arb_addrs(), cap in 1usize..200) {
        let regions = grow_regions(&seeds, &SixGenConfig::default());
        if let Some(r) = regions.first() {
            let out = r.enumerate(cap);
            prop_assert_eq!(out.len() as u128, r.size().min(cap as u128));
        }
    }
}
