//! `expanse-sixgen`: a re-implementation of 6Gen (Murdock et al., IMC
//! 2017) — dense-region growth for IPv6 target generation.
//!
//! 6Gen's premise: active addresses cluster in dense regions of the
//! address space. Seeds are 32-nybble words; a *region* is, per nybble
//! position, a set of allowed values (a combinatorial box). Regions grow
//! greedily around seeds to maximize seed density (seeds contained /
//! region size); generation enumerates the densest regions first, under
//! a budget.
//!
//! ```
//! use expanse_sixgen::{grow_regions, generate, SixGenConfig};
//! use expanse_addr::u128_to_addr;
//!
//! let seeds: Vec<_> = (1..=40u128)
//!     .map(|i| u128_to_addr((0x2001_0db8u128 << 96) | i))
//!     .collect();
//! let regions = grow_regions(&seeds, &SixGenConfig::default());
//! let targets = generate(&regions, 100);
//! assert!(!targets.is_empty());
//! ```

use expanse_addr::nybbles::{from_nybbles, nybbles, NYBBLES};
use std::collections::HashSet;
use std::net::Ipv6Addr;

/// Configuration for region growth.
#[derive(Debug, Clone)]
pub struct SixGenConfig {
    /// A seed joins an existing region only if the grown region's size
    /// stays at or below this bound (keeps boxes scannable).
    pub max_region_size: u128,
    /// Minimum density (seeds / size) for a region to survive growth.
    pub min_density: f64,
    /// Maximum number of regions retained (densest first).
    pub max_regions: usize,
    /// A seed may join a region only if the region's density after
    /// growth stays within this factor of its density before (guards
    /// against outliers exploding a dense box).
    pub max_dilution: f64,
}

impl Default for SixGenConfig {
    fn default() -> Self {
        SixGenConfig {
            max_region_size: 1 << 20,
            min_density: 1e-6,
            max_regions: 4096,
            max_dilution: 8.0,
        }
    }
}

/// A combinatorial box: per nybble position, a bitmask of allowed values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Bit `v` of `sets[i]` set ⇒ nybble value `v` allowed at position i.
    pub sets: [u16; NYBBLES],
    /// Seeds absorbed into the region.
    pub seeds: usize,
}

impl Region {
    /// The singleton region of one seed.
    pub fn of(seed: Ipv6Addr) -> Region {
        let n = nybbles(seed);
        let mut sets = [0u16; NYBBLES];
        for (i, v) in n.iter().enumerate() {
            sets[i] = 1 << v;
        }
        Region { sets, seeds: 1 }
    }

    /// Number of addresses the region covers (product of set sizes).
    pub fn size(&self) -> u128 {
        let mut s: u128 = 1;
        for m in self.sets {
            s = s.saturating_mul(u128::from(m.count_ones()));
        }
        s
    }

    /// Seed density.
    pub fn density(&self) -> f64 {
        self.seeds as f64 / self.size() as f64
    }

    /// Does the region contain `addr`?
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        nybbles(addr)
            .iter()
            .enumerate()
            .all(|(i, v)| self.sets[i] & (1 << v) != 0)
    }

    /// Size of the region grown to include `addr` (without mutating).
    pub fn grown_size(&self, addr: Ipv6Addr) -> u128 {
        let n = nybbles(addr);
        let mut s: u128 = 1;
        for (i, v) in n.iter().enumerate() {
            let m = self.sets[i] | (1 << v);
            s = s.saturating_mul(u128::from(m.count_ones()));
        }
        s
    }

    /// Grow to include `addr`.
    pub fn grow(&mut self, addr: Ipv6Addr) {
        for (i, v) in nybbles(addr).iter().enumerate() {
            self.sets[i] |= 1 << v;
        }
        self.seeds += 1;
    }

    /// Enumerate up to `cap` addresses of the region in mixed-radix
    /// order.
    pub fn enumerate(&self, cap: usize) -> Vec<Ipv6Addr> {
        // Values per position.
        let values: Vec<Vec<u8>> = self
            .sets
            .iter()
            .map(|m| (0..16u8).filter(|v| m & (1 << v) != 0).collect())
            .collect();
        let total = self.size().min(cap as u128) as usize;
        let mut out = Vec::with_capacity(total);
        let mut idx = vec![0usize; NYBBLES];
        for _ in 0..total {
            let mut nyb = [0u8; NYBBLES];
            for (i, vi) in idx.iter().enumerate() {
                nyb[i] = values[i][*vi];
            }
            out.push(from_nybbles(&nyb));
            // Increment mixed-radix counter from the least significant
            // position (rightmost nybble varies fastest).
            for i in (0..NYBBLES).rev() {
                idx[i] += 1;
                if idx[i] < values[i].len() {
                    break;
                }
                idx[i] = 0;
            }
        }
        out
    }
}

/// Grow regions from seeds: single-pass greedy assignment (each seed
/// joins the region whose growth costs the least size inflation, if the
/// result stays within bounds; otherwise it founds a new region),
/// followed by a density filter.
pub fn grow_regions(seeds: &[Ipv6Addr], cfg: &SixGenConfig) -> Vec<Region> {
    let mut regions: Vec<Region> = Vec::new();
    let mut seen: HashSet<Ipv6Addr> = HashSet::new();
    for &seed in seeds {
        if !seen.insert(seed) {
            continue;
        }
        // Find the region whose grown size is smallest, subject to the
        // size bound and the density-dilution guard.
        let mut best: Option<(usize, u128)> = None;
        for (i, r) in regions.iter().enumerate() {
            if r.contains(seed) {
                best = Some((i, r.size()));
                break;
            }
            let gs = r.grown_size(seed);
            let new_density = (r.seeds + 1) as f64 / gs as f64;
            if gs <= cfg.max_region_size
                && new_density * cfg.max_dilution >= r.density()
                && best.is_none_or(|(_, b)| gs < b)
            {
                best = Some((i, gs));
            }
        }
        match best {
            Some((i, _)) => regions[i].grow(seed),
            None => regions.push(Region::of(seed)),
        }
    }
    regions.retain(|r| r.density() >= cfg.min_density);
    regions.sort_by(|a, b| {
        b.density()
            .partial_cmp(&a.density())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    regions.truncate(cfg.max_regions);
    regions
}

/// Generate up to `budget` target addresses: densest regions first,
/// budget split region by region.
pub fn generate(regions: &[Region], budget: usize) -> Vec<Ipv6Addr> {
    let mut out: Vec<Ipv6Addr> = Vec::with_capacity(budget);
    let mut seen: HashSet<u128> = HashSet::with_capacity(budget);
    for r in regions {
        if out.len() >= budget {
            break;
        }
        for a in r.enumerate(budget - out.len()) {
            if seen.insert(expanse_addr::addr_to_u128(a)) {
                out.push(a);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use expanse_addr::u128_to_addr;

    fn seeds_two_clusters() -> Vec<Ipv6Addr> {
        let mut v = Vec::new();
        // Dense cluster: IIDs 1..=50 in one /64.
        for i in 1..=50u128 {
            v.push(u128_to_addr((0x2001_0db8u128 << 96) | i));
        }
        // A lone outlier far away.
        v.push(u128_to_addr(0x2a00_1450u128 << 96 | 0xdead));
        v
    }

    #[test]
    fn region_mechanics() {
        let a: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let b: Ipv6Addr = "2001:db8::2".parse().unwrap();
        let mut r = Region::of(a);
        assert_eq!(r.size(), 1);
        assert!(r.contains(a));
        assert!(!r.contains(b));
        r.grow(b);
        assert_eq!(r.size(), 2); // last nybble now {1,2}
        assert!(r.contains(b));
        assert_eq!(r.seeds, 2);
        assert_eq!(r.density(), 1.0);
    }

    #[test]
    fn grow_regions_clusters_dense_seeds() {
        let regions = grow_regions(&seeds_two_clusters(), &SixGenConfig::default());
        assert!(regions.len() >= 2, "{}", regions.len());
        // The 50-seed cluster must coalesce into one region (the outlier
        // stays a density-1 singleton, which sorts first).
        let biggest = regions.iter().max_by_key(|r| r.seeds).unwrap();
        assert!(biggest.seeds >= 45, "cluster fragmented: {}", biggest.seeds);
        assert!(biggest.density() > 0.5);
        // All regions respect the size bound.
        for r in &regions {
            assert!(r.size() <= SixGenConfig::default().max_region_size || r.seeds == 1);
        }
    }

    #[test]
    fn generation_prioritizes_dense_regions() {
        let regions = grow_regions(&seeds_two_clusters(), &SixGenConfig::default());
        let targets = generate(&regions, 64);
        assert!(!targets.is_empty());
        assert!(targets.len() <= 64);
        // Generated addresses live in the dense /64 predominantly.
        let p64: expanse_addr::Prefix = "2001:db8::/64".parse().unwrap();
        let dense = targets.iter().filter(|t| p64.contains(**t)).count();
        assert!(
            dense * 2 >= targets.len(),
            "dense={dense}/{}",
            targets.len()
        );
        // Distinct.
        let set: HashSet<_> = targets.iter().collect();
        assert_eq!(set.len(), targets.len());
    }

    #[test]
    fn enumerate_respects_cap_and_membership() {
        let mut r = Region::of("2001:db8::1".parse().unwrap());
        r.grow("2001:db8::2".parse().unwrap());
        r.grow("2001:db8::f".parse().unwrap());
        r.grow("2001:db8:0:0:1::1".parse().unwrap());
        let all = r.enumerate(1000);
        assert_eq!(all.len() as u128, r.size());
        assert!(all.iter().all(|a| r.contains(*a)));
        let some = r.enumerate(3);
        assert_eq!(some.len(), 3);
    }

    #[test]
    fn duplicate_seeds_ignored() {
        let a: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let regions = grow_regions(&[a, a, a], &SixGenConfig::default());
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].seeds, 1);
    }

    #[test]
    fn empty_seeds_empty_regions() {
        let regions = grow_regions(&[], &SixGenConfig::default());
        assert!(regions.is_empty());
        assert!(generate(&regions, 10).is_empty());
    }

    #[test]
    fn budget_zero() {
        let regions = grow_regions(&seeds_two_clusters(), &SixGenConfig::default());
        assert!(generate(&regions, 0).is_empty());
    }

    #[test]
    fn deterministic() {
        let cfg = SixGenConfig::default();
        let a = generate(&grow_regions(&seeds_two_clusters(), &cfg), 50);
        let b = generate(&grow_regions(&seeds_two_clusters(), &cfg), 50);
        assert_eq!(a, b);
    }
}
