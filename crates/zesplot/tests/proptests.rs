//! Property tests for the squarified-treemap layout.

use expanse_zesplot::layout;
use proptest::prelude::*;

proptest! {
    #[test]
    fn tiles_conserve_area(
        areas in proptest::collection::vec(0.0f64..1000.0, 1..60),
        w in 10.0f64..2000.0,
        h in 10.0f64..2000.0,
    ) {
        let rects = layout(&areas, w, h);
        prop_assert_eq!(rects.len(), areas.len());
        let total: f64 = rects.iter().map(|r| r.w * r.h).sum();
        prop_assert!(
            (total - w * h).abs() < w * h * 1e-6,
            "area {total} vs canvas {}",
            w * h
        );
    }

    #[test]
    fn tiles_stay_in_canvas(
        areas in proptest::collection::vec(0.1f64..1000.0, 1..60),
        w in 10.0f64..2000.0,
        h in 10.0f64..2000.0,
    ) {
        for r in layout(&areas, w, h) {
            prop_assert!(r.x >= -1e-6 && r.y >= -1e-6);
            prop_assert!(r.x + r.w <= w + 1e-4, "{r:?} exceeds width {w}");
            prop_assert!(r.y + r.h <= h + 1e-4, "{r:?} exceeds height {h}");
            prop_assert!(r.w >= 0.0 && r.h >= 0.0);
        }
    }

    #[test]
    fn tiles_do_not_overlap(
        areas in proptest::collection::vec(0.1f64..1000.0, 1..40),
        w in 50.0f64..500.0,
    ) {
        let rects = layout(&areas, w, w);
        for (i, a) in rects.iter().enumerate() {
            for b in rects.iter().skip(i + 1) {
                let ow = (a.x + a.w).min(b.x + b.w) - a.x.max(b.x);
                let oh = (a.y + a.h).min(b.y + b.h) - a.y.max(b.y);
                prop_assert!(
                    ow <= 1e-6 || oh <= 1e-6,
                    "overlap between {a:?} and {b:?}"
                );
            }
        }
    }

    #[test]
    fn areas_proportional_to_weights(
        weights in proptest::collection::vec(1.0f64..100.0, 2..20),
    ) {
        let rects = layout(&weights, 1000.0, 800.0);
        let total_w: f64 = weights.iter().sum();
        for (r, wgt) in rects.iter().zip(&weights) {
            let got = r.w * r.h;
            let want = wgt / total_w * 800_000.0;
            prop_assert!(
                (got - want).abs() < want * 0.01 + 1e-6,
                "weight {wgt}: area {got} want {want}"
            );
        }
    }
}
