//! `expanse-zesplot`: squarified-treemap visualization of IPv6 prefix
//! datasets (Hendriks' zesplot, as used in Figures 1c, 3b, 5 and 6 of
//! the paper).
//!
//! A zesplot draws one rectangle per input prefix (never the whole
//! address space). Prefixes are ordered by `{prefix length, ASN}` so a
//! prefix keeps its position across plots of the same input; rectangle
//! areas follow prefix size (or are uniform in the *unsized* variant,
//! which Figures 3b/5/6 use), and colors encode a per-prefix value
//! (address count, response count, cluster id) on a log scale.
//!
//! Layout is the squarified-treemap algorithm of Bruls et al., which the
//! zesplot tool extends with alternating row orientation.

mod squarify;
mod svg;

pub use squarify::{layout, Rect};

pub use svg::render_svg;

use expanse_addr::Prefix;

/// One input prefix with its display attributes.
#[derive(Debug, Clone)]
pub struct ZesEntry {
    /// The prefix this rectangle represents.
    pub prefix: Prefix,
    /// Origin AS number (ordering key).
    pub asn: u32,
    /// Color value (e.g. address count). Zero renders white.
    pub value: f64,
}

/// Plot configuration.
#[derive(Debug, Clone)]
pub struct ZesConfig {
    /// Canvas width in pixels.
    pub width: f64,
    /// Canvas height in pixels.
    pub height: f64,
    /// Sized (area ∝ prefix size) or unsized (uniform boxes) plot.
    pub sized: bool,
    /// Legend/label for the color scale.
    pub label: String,
}

impl Default for ZesConfig {
    fn default() -> Self {
        ZesConfig {
            width: 800.0,
            height: 500.0,
            sized: true,
            label: "addresses".to_string(),
        }
    }
}

/// A laid-out plot ready for rendering.
#[derive(Debug, Clone)]
pub struct ZesPlot {
    /// `(value, probability)` pairs, descending by probability.
    pub entries: Vec<ZesEntry>,
    /// One rectangle per entry, same order.
    pub rects: Vec<Rect>,
    /// Plot configuration used for layout.
    pub config: ZesConfig,
}

/// Area weight of a prefix: wider prefixes get (dampened) larger areas.
/// True proportionality (2^(128-len)) would leave everything but the
/// widest prefix invisible, so zesplot dampens; we use 1.25^(-len),
/// normalized later.
fn area_weight(len: u8) -> f64 {
    1.25f64.powi(-i32::from(len))
}

/// Build a *nested* zesplot: more-specific input prefixes are drawn in
/// the top half of their covering input prefix's rectangle, as the
/// original zesplot tool does ("More-specific subprefixes are plotted in
/// the top half of that prefix's rectangle").
///
/// One nesting level is rendered: every covered prefix is assigned to
/// its least-specific covering entry. Top-level prefixes tile the canvas
/// exactly as [`plot`] would.
pub fn plot_nested(entries: Vec<ZesEntry>, config: ZesConfig) -> ZesPlot {
    // Split entries into top-level and covered.
    let mut top: Vec<ZesEntry> = Vec::new();
    let mut children: Vec<(usize, ZesEntry)> = Vec::new(); // (top index, entry)
    let mut sorted = entries;
    sorted.sort_by(|a, b| {
        a.prefix
            .len()
            .cmp(&b.prefix.len())
            .then_with(|| a.asn.cmp(&b.asn))
            .then_with(|| a.prefix.cmp(&b.prefix))
    });
    for e in sorted {
        match top
            .iter()
            .position(|t| t.prefix.covers(&e.prefix) && t.prefix != e.prefix)
        {
            Some(i) => children.push((i, e)),
            None => top.push(e),
        }
    }
    // Lay out the top level.
    let top_plot = plot(top, config.clone());
    let mut all_entries = top_plot.entries.clone();
    let mut all_rects = top_plot.rects.clone();
    // Lay out each parent's children inside the top half of its rect.
    for (parent_idx, parent_rect) in top_plot.rects.iter().enumerate() {
        let parent_prefix = top_plot.entries[parent_idx].prefix;
        let mine: Vec<ZesEntry> = children
            .iter()
            .filter(|(_, e)| parent_prefix.covers(&e.prefix))
            .map(|(_, e)| e.clone())
            .collect();
        if mine.is_empty() {
            continue;
        }
        let areas: Vec<f64> = if config.sized {
            mine.iter().map(|e| area_weight(e.prefix.len())).collect()
        } else {
            vec![1.0; mine.len()]
        };
        let half_h = parent_rect.h / 2.0;
        let sub = layout(&areas, parent_rect.w, half_h);
        for (e, r) in mine.into_iter().zip(sub) {
            all_entries.push(e);
            all_rects.push(Rect {
                x: parent_rect.x + r.x,
                y: parent_rect.y + r.y,
                w: r.w,
                h: r.h,
            });
        }
    }
    ZesPlot {
        entries: all_entries,
        rects: all_rects,
        config,
    }
}

/// Build a zesplot: sort by `{len, asn, prefix}`, lay out, attach rects.
pub fn plot(mut entries: Vec<ZesEntry>, config: ZesConfig) -> ZesPlot {
    entries.sort_by(|a, b| {
        a.prefix
            .len()
            .cmp(&b.prefix.len())
            .then_with(|| a.asn.cmp(&b.asn))
            .then_with(|| a.prefix.cmp(&b.prefix))
    });
    let areas: Vec<f64> = if config.sized {
        entries
            .iter()
            .map(|e| area_weight(e.prefix.len()))
            .collect()
    } else {
        vec![1.0; entries.len()]
    };
    let rects = layout(&areas, config.width, config.height);
    ZesPlot {
        entries,
        rects,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries() -> Vec<ZesEntry> {
        let specs = [
            ("2001:db8::/32", 2, 100.0),
            ("2001:db9::/32", 1, 5.0),
            ("2a00::/19", 3, 1000.0),
            ("2a02:123:456::/48", 1, 0.0),
        ];
        specs
            .iter()
            .map(|(p, asn, v)| ZesEntry {
                prefix: p.parse().unwrap(),
                asn: *asn,
                value: *v,
            })
            .collect()
    }

    #[test]
    fn ordering_is_len_then_asn() {
        let p = plot(entries(), ZesConfig::default());
        let lens: Vec<u8> = p.entries.iter().map(|e| e.prefix.len()).collect();
        assert_eq!(lens, vec![19, 32, 32, 48]);
        // The two /32s ordered by ASN.
        assert_eq!(p.entries[1].asn, 1);
        assert_eq!(p.entries[2].asn, 2);
    }

    #[test]
    fn rects_tile_the_canvas() {
        let cfg = ZesConfig::default();
        let p = plot(entries(), cfg.clone());
        assert_eq!(p.rects.len(), p.entries.len());
        let total: f64 = p.rects.iter().map(|r| r.w * r.h).sum();
        assert!(
            (total - cfg.width * cfg.height).abs() < 1.0,
            "area {total} vs canvas {}",
            cfg.width * cfg.height
        );
        for r in &p.rects {
            assert!(r.x >= -1e-9 && r.y >= -1e-9);
            assert!(r.x + r.w <= cfg.width + 1e-6);
            assert!(r.y + r.h <= cfg.height + 1e-6);
        }
    }

    #[test]
    fn sized_gives_larger_area_to_shorter_prefix() {
        let p = plot(entries(), ZesConfig::default());
        let a19 = p.rects[0].w * p.rects[0].h;
        let a48 = p.rects[3].w * p.rects[3].h;
        assert!(a19 > a48, "a19={a19} a48={a48}");
    }

    #[test]
    fn unsized_gives_equal_areas() {
        let cfg = ZesConfig {
            sized: false,
            ..ZesConfig::default()
        };
        let p = plot(entries(), cfg);
        let areas: Vec<f64> = p.rects.iter().map(|r| r.w * r.h).collect();
        for a in &areas {
            assert!((a - areas[0]).abs() < 1.0, "{areas:?}");
        }
    }

    #[test]
    fn nested_children_sit_in_parents_top_half() {
        let mut e = entries();
        e.push(ZesEntry {
            prefix: "2001:db8:47::/48".parse().unwrap(), // inside 2001:db8::/32
            asn: 2,
            value: 7.0,
        });
        e.push(ZesEntry {
            prefix: "2001:db8:47:1::/64".parse().unwrap(), // also inside
            asn: 2,
            value: 3.0,
        });
        let p = plot_nested(e, ZesConfig::default());
        // 4 top-level + 2 children.
        assert_eq!(p.entries.len(), 6);
        let parent_idx = p
            .entries
            .iter()
            .position(|x| x.prefix == "2001:db8::/32".parse().unwrap())
            .unwrap();
        let parent = p.rects[parent_idx];
        for (e, r) in p.entries.iter().zip(&p.rects) {
            if e.prefix == "2001:db8:47::/48".parse().unwrap()
                || e.prefix == "2001:db8:47:1::/64".parse().unwrap()
            {
                assert!(r.x >= parent.x - 1e-6);
                assert!(r.x + r.w <= parent.x + parent.w + 1e-4);
                assert!(r.y >= parent.y - 1e-6);
                assert!(
                    r.y + r.h <= parent.y + parent.h / 2.0 + 1e-4,
                    "child must sit in the TOP half: {r:?} in {parent:?}"
                );
            }
        }
    }

    #[test]
    fn nested_without_overlaps_equals_flat() {
        let p_flat = plot(entries(), ZesConfig::default());
        let p_nest = plot_nested(entries(), ZesConfig::default());
        assert_eq!(p_flat.entries.len(), p_nest.entries.len());
        for (a, b) in p_flat.rects.iter().zip(&p_nest.rects) {
            assert_eq!(a, b, "no covered prefixes -> identical layout");
        }
    }

    #[test]
    fn stable_position_across_plots() {
        // Same input prefixes, different values: same rectangles.
        let mut e2 = entries();
        for e in e2.iter_mut() {
            e.value *= 7.0;
        }
        let a = plot(entries(), ZesConfig::default());
        let b = plot(e2, ZesConfig::default());
        for (ra, rb) in a.rects.iter().zip(&b.rects) {
            assert_eq!(ra, rb);
        }
    }
}
