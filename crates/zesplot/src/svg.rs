//! SVG rendering of laid-out zesplots.

use crate::ZesPlot;

/// Map a value to a white→yellow→red heat color on a log scale relative
/// to `max` (zero → white, like the paper's plots).
fn heat_color(value: f64, max: f64) -> String {
    if value <= 0.0 || max <= 0.0 {
        return "#ffffff".to_string();
    }
    let t = ((value.ln_1p()) / (max.ln_1p())).clamp(0.0, 1.0);
    // 0 → light yellow (255,250,205), 1 → dark red (139,0,0).
    let r = 255.0 + (139.0 - 255.0) * t;
    let g = 250.0 + (0.0 - 250.0) * t;
    let b = 205.0 + (0.0 - 205.0) * t;
    format!("#{:02x}{:02x}{:02x}", r as u8, g as u8, b as u8)
}

/// Render the plot as a standalone SVG document. Each rectangle carries
/// a `<title>` tooltip with prefix, ASN and value.
pub fn render_svg(plot: &ZesPlot) -> String {
    let cfg = &plot.config;
    let max = plot.entries.iter().map(|e| e.value).fold(0.0f64, f64::max);
    let mut out = String::with_capacity(plot.entries.len() * 160 + 512);
    out.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"#,
        cfg.width,
        cfg.height + 24.0,
        cfg.width,
        cfg.height + 24.0
    ));
    out.push('\n');
    out.push_str(&format!(
        r#"<text x="4" y="{:.0}" font-family="monospace" font-size="12">{} prefixes, color = {} (log scale, max {})</text>"#,
        cfg.height + 16.0,
        plot.entries.len(),
        cfg.label,
        max
    ));
    out.push('\n');
    for (e, r) in plot.entries.iter().zip(&plot.rects) {
        if r.w <= 0.0 || r.h <= 0.0 {
            continue;
        }
        let color = heat_color(e.value, max);
        out.push_str(&format!(
            r##"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="{}" stroke="#666" stroke-width="0.4"><title>{} AS{} = {}</title></rect>"##,
            r.x, r.y, r.w, r.h, color, e.prefix, e.asn, e.value
        ));
        out.push('\n');
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{plot, ZesConfig, ZesEntry};

    fn sample_plot() -> ZesPlot {
        let entries = vec![
            ZesEntry {
                prefix: "2001:db8::/32".parse().unwrap(),
                asn: 65001,
                value: 50.0,
            },
            ZesEntry {
                prefix: "2a00::/24".parse().unwrap(),
                asn: 65002,
                value: 0.0,
            },
        ];
        plot(entries, ZesConfig::default())
    }

    #[test]
    fn svg_structure() {
        let svg = render_svg(&sample_plot());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 2);
        assert!(svg.contains("2001:db8::/32 AS65001 = 50"));
    }

    #[test]
    fn zero_value_is_white() {
        let svg = render_svg(&sample_plot());
        assert!(svg.contains("#ffffff"), "zero-value prefix must be white");
    }

    #[test]
    fn heat_scale_monotone() {
        let lo = heat_color(1.0, 1000.0);
        let hi = heat_color(1000.0, 1000.0);
        assert_ne!(lo, hi);
        assert_eq!(heat_color(0.0, 100.0), "#ffffff");
        assert_eq!(heat_color(5.0, 0.0), "#ffffff");
        // Max value maps to the dark end.
        assert_eq!(hi, "#8b0000");
    }
}
