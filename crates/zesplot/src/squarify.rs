//! Squarified treemaps (Bruls, Huizing, van Wijk 2000).

/// An axis-aligned rectangle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// X coordinate (pixels from the left edge).
    pub x: f64,
    /// Y coordinate (pixels from the top edge).
    pub y: f64,
    /// Width in pixels.
    pub w: f64,
    /// Height in pixels.
    pub h: f64,
}

/// Lay `areas` (arbitrary positive weights, in order) into a `w × h`
/// canvas. Weights are normalized to fill the canvas exactly. Returns
/// one rect per input, in input order. Zero/negative weights get a
/// degenerate sliver (kept so indices line up).
pub fn layout(areas: &[f64], w: f64, h: f64) -> Vec<Rect> {
    let n = areas.len();
    if n == 0 {
        return Vec::new();
    }
    let total: f64 = areas.iter().map(|a| a.max(0.0)).sum();
    if total <= 0.0 {
        // All-zero: uniform fallback.
        return layout(&vec![1.0; n], w, h);
    }
    let scale = (w * h) / total;
    let scaled: Vec<f64> = areas.iter().map(|a| a.max(0.0) * scale).collect();

    let mut out: Vec<Rect> = Vec::with_capacity(n);
    let mut free = Rect {
        x: 0.0,
        y: 0.0,
        w,
        h,
    };
    let mut row: Vec<f64> = Vec::new();
    let mut i = 0usize;

    fn worst(row: &[f64], side: f64) -> f64 {
        let sum: f64 = row.iter().sum();
        if sum <= 0.0 || side <= 0.0 {
            return f64::INFINITY;
        }
        let max = row.iter().cloned().fold(f64::MIN, f64::max);
        let min = row.iter().cloned().fold(f64::MAX, f64::min);
        let s2 = sum * sum;
        let side2 = side * side;
        (side2 * max / s2).max(s2 / (side2 * min.max(f64::MIN_POSITIVE)))
    }

    fn flush(row: &[f64], free: &mut Rect, out: &mut Vec<Rect>) {
        let sum: f64 = row.iter().sum();
        if row.is_empty() {
            return;
        }
        let vertical = free.w >= free.h; // fill a vertical strip on the left
        if vertical {
            let strip_w = if free.h > 0.0 { sum / free.h } else { 0.0 };
            let mut y = free.y;
            for &a in row {
                let rh = if sum > 0.0 { a / sum * free.h } else { 0.0 };
                out.push(Rect {
                    x: free.x,
                    y,
                    w: strip_w,
                    h: rh,
                });
                y += rh;
            }
            free.x += strip_w;
            free.w -= strip_w;
        } else {
            let strip_h = if free.w > 0.0 { sum / free.w } else { 0.0 };
            let mut x = free.x;
            for &a in row {
                let rw = if sum > 0.0 { a / sum * free.w } else { 0.0 };
                out.push(Rect {
                    x,
                    y: free.y,
                    w: rw,
                    h: strip_h,
                });
                x += rw;
            }
            free.y += strip_h;
            free.h -= strip_h;
        }
    }

    while i < n {
        let side = free.w.min(free.h);
        let a = scaled[i].max(1e-12);
        if row.is_empty() {
            row.push(a);
            i += 1;
            continue;
        }
        // Does adding the next area improve the worst aspect ratio?
        let without = worst(&row, side);
        row.push(a);
        let with = worst(&row, side);
        if with > without {
            row.pop();
            flush(&row, &mut free, &mut out);
            row.clear();
        } else {
            i += 1;
        }
    }
    flush(&row, &mut free, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn areas_proportional() {
        let rects = layout(&[3.0, 1.0], 100.0, 100.0);
        assert_eq!(rects.len(), 2);
        let a0 = rects[0].w * rects[0].h;
        let a1 = rects[1].w * rects[1].h;
        assert!((a0 / a1 - 3.0).abs() < 0.01, "a0={a0} a1={a1}");
        assert!((a0 + a1 - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn bruls_reference_example() {
        // The canonical example: areas 6,6,4,3,2,2,1 in a 6×4 canvas.
        let areas = [6.0, 6.0, 4.0, 3.0, 2.0, 2.0, 1.0];
        let rects = layout(&areas, 6.0, 4.0);
        assert_eq!(rects.len(), 7);
        let total: f64 = rects.iter().map(|r| r.w * r.h).sum();
        assert!((total - 24.0).abs() < 1e-9);
        // Aspect ratios should be reasonable (the point of squarify).
        for r in &rects {
            let ar = (r.w / r.h).max(r.h / r.w);
            assert!(ar < 4.0, "bad aspect ratio {ar} for {r:?}");
        }
    }

    #[test]
    fn no_overlaps() {
        let areas: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let rects = layout(&areas, 100.0, 60.0);
        for (i, a) in rects.iter().enumerate() {
            for b in rects.iter().skip(i + 1) {
                let overlap_w = (a.x + a.w).min(b.x + b.w) - a.x.max(b.x);
                let overlap_h = (a.y + a.h).min(b.y + b.h) - a.y.max(b.y);
                if overlap_w > 1e-6 && overlap_h > 1e-6 {
                    panic!("rects overlap: {a:?} {b:?}");
                }
            }
        }
    }

    #[test]
    fn empty_and_zero() {
        assert!(layout(&[], 10.0, 10.0).is_empty());
        let rects = layout(&[0.0, 0.0], 10.0, 10.0);
        assert_eq!(rects.len(), 2);
        let total: f64 = rects.iter().map(|r| r.w * r.h).sum();
        assert!((total - 100.0).abs() < 1e-6);
    }

    #[test]
    fn single() {
        let rects = layout(&[5.0], 30.0, 20.0);
        assert_eq!(rects.len(), 1);
        assert_eq!(
            rects[0],
            Rect {
                x: 0.0,
                y: 0.0,
                w: 30.0,
                h: 20.0
            }
        );
    }
}
