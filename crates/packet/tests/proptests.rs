//! Property tests: emit/parse roundtrips and checksum tamper detection.

use expanse_packet::{
    tcp::options_text, Datagram, Icmpv6Message, TcpFlags, TcpOption, TcpSegment, Transport,
    UdpDatagram,
};
use proptest::prelude::*;
use std::net::Ipv6Addr;

fn arb_addr() -> impl Strategy<Value = Ipv6Addr> {
    any::<u128>().prop_map(|v| Ipv6Addr::from(v.to_be_bytes()))
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..256)
}

fn arb_tcp_option() -> impl Strategy<Value = TcpOption> {
    prop_oneof![
        Just(TcpOption::Nop),
        any::<u16>().prop_map(TcpOption::Mss),
        any::<u8>().prop_map(TcpOption::WindowScale),
        Just(TcpOption::SackPermitted),
        (any::<u32>(), any::<u32>())
            .prop_map(|(tsval, tsecr)| TcpOption::Timestamps { tsval, tsecr }),
    ]
}

proptest! {
    #[test]
    fn icmpv6_echo_roundtrip(
        src in arb_addr(), dst in arb_addr(),
        ident in any::<u16>(), seq in any::<u16>(), payload in arb_payload(),
    ) {
        let msg = Icmpv6Message::EchoRequest { ident, seq, payload };
        let bytes = msg.emit(src, dst);
        prop_assert_eq!(Icmpv6Message::parse(src, dst, &bytes).unwrap(), msg);
    }

    #[test]
    fn icmpv6_tamper_detected(
        src in arb_addr(), dst in arb_addr(),
        seq in any::<u16>(), flip_bit in 0usize..64,
    ) {
        let msg = Icmpv6Message::EchoRequest { ident: 1, seq, payload: vec![0; 8] };
        let mut bytes = msg.emit(src, dst);
        let byte = flip_bit / 8 % bytes.len();
        bytes[byte] ^= 1 << (flip_bit % 8);
        // Any single-bit flip must be caught by the Internet checksum.
        prop_assert!(Icmpv6Message::parse(src, dst, &bytes).is_err());
    }

    #[test]
    fn tcp_roundtrip(
        src in arb_addr(), dst in arb_addr(),
        sp in any::<u16>(), dp in any::<u16>(),
        seq in any::<u32>(), ack in any::<u32>(),
        flags in any::<u8>(), window in any::<u16>(),
        opts in proptest::collection::vec(arb_tcp_option(), 0..5),
        payload in arb_payload(),
    ) {
        let seg = TcpSegment {
            src_port: sp, dst_port: dp, seq, ack,
            flags: TcpFlags(flags), window, urgent: 0,
            options: opts, payload,
        };
        if seg.header_len() > 60 { return Ok(()); }
        let bytes = seg.emit(src, dst);
        let parsed = TcpSegment::parse(src, dst, &bytes).unwrap();
        // Padding may append NOP-invisible bytes, but we only pad with
        // zeros after the declared options, and parsing strips EOL, so the
        // roundtrip must be exact.
        prop_assert_eq!(parsed, seg);
    }

    #[test]
    fn udp_roundtrip(
        src in arb_addr(), dst in arb_addr(),
        sp in any::<u16>(), dp in any::<u16>(), payload in arb_payload(),
    ) {
        let u = UdpDatagram::new(sp, dp, payload);
        let bytes = u.emit(src, dst);
        prop_assert_eq!(UdpDatagram::parse(src, dst, &bytes).unwrap(), u);
    }

    #[test]
    fn full_datagram_roundtrip(
        src in arb_addr(), dst in arb_addr(),
        hop in any::<u8>(), payload in arb_payload(),
    ) {
        let u = UdpDatagram::new(1000, 53, payload);
        let d = Datagram::udp(src, dst, hop, &u);
        let bytes = d.emit();
        let (hdr, t) = Datagram::parse_transport(&bytes).unwrap();
        prop_assert_eq!(hdr.src, src);
        prop_assert_eq!(hdr.dst, dst);
        prop_assert_eq!(hdr.hop_limit, hop);
        match t {
            Transport::Udp(got) => prop_assert_eq!(got, u),
            other => prop_assert!(false, "wrong transport {:?}", other),
        }
    }

    #[test]
    fn options_text_stable_under_roundtrip(
        src in arb_addr(), dst in arb_addr(),
        opts in proptest::collection::vec(arb_tcp_option(), 0..6),
    ) {
        let seg = TcpSegment {
            options: opts.clone(),
            ..TcpSegment::syn(1, 2, 3)
        };
        if seg.header_len() > 60 { return Ok(()); }
        let parsed = TcpSegment::parse(src, dst, &seg.emit(src, dst)).unwrap();
        prop_assert_eq!(parsed.options_text(), options_text(&opts));
    }
}
