//! The five probed services of the paper (§6: "We send probes on ICMP,
//! TCP/80, TCP/443, UDP/53, and UDP/443 to cover the most common
//! services") as a shared vocabulary type, plus compact protocol sets.

use std::fmt;

/// A probed service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// ICMPv6 echo.
    Icmp,
    /// HTTP.
    Tcp80,
    /// HTTPS.
    Tcp443,
    /// DNS.
    Udp53,
    /// QUIC.
    Udp443,
}

impl Protocol {
    /// All five, in the paper's display order.
    pub const ALL: [Protocol; 5] = [
        Protocol::Icmp,
        Protocol::Tcp80,
        Protocol::Tcp443,
        Protocol::Udp53,
        Protocol::Udp443,
    ];

    /// Destination port, if port-based.
    pub fn port(self) -> Option<u16> {
        match self {
            Protocol::Icmp => None,
            Protocol::Tcp80 => Some(80),
            Protocol::Tcp443 => Some(443),
            Protocol::Udp53 => Some(53),
            Protocol::Udp443 => Some(443),
        }
    }

    /// Stable index 0..5 (bit position in [`ProtoSet`]).
    pub fn index(self) -> usize {
        match self {
            Protocol::Icmp => 0,
            Protocol::Tcp80 => 1,
            Protocol::Tcp443 => 2,
            Protocol::Udp53 => 3,
            Protocol::Udp443 => 4,
        }
    }

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Icmp => "ICMP",
            Protocol::Tcp80 => "TCP/80",
            Protocol::Tcp443 => "TCP/443",
            Protocol::Udp53 => "UDP/53",
            Protocol::Udp443 => "UDP/443",
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of protocols, packed into one byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct ProtoSet(pub u8);

impl ProtoSet {
    /// The empty set.
    pub const EMPTY: ProtoSet = ProtoSet(0);
    /// All five protocols.
    pub const ALL: ProtoSet = ProtoSet(0b11111);

    /// Singleton set.
    pub fn only(p: Protocol) -> ProtoSet {
        ProtoSet(1 << p.index())
    }

    /// The checked constructor from a raw bitmask: `None` if any bit
    /// beyond the protocol universe is set. Every decoder of a
    /// persisted or wire-transported protocol byte (the snapshot
    /// codec, the serve protocol) must validate through this one gate,
    /// so widening [`ProtoSet::ALL`] can never silently desynchronize
    /// what different layers accept.
    pub fn from_bits(b: u8) -> Option<ProtoSet> {
        (b & !ProtoSet::ALL.0 == 0).then_some(ProtoSet(b))
    }

    /// Add a protocol.
    #[must_use]
    pub fn with(self, p: Protocol) -> ProtoSet {
        ProtoSet(self.0 | (1 << p.index()))
    }

    /// Remove a protocol.
    #[must_use]
    pub fn without(self, p: Protocol) -> ProtoSet {
        ProtoSet(self.0 & !(1 << p.index()))
    }

    /// Membership test.
    pub fn contains(self, p: Protocol) -> bool {
        self.0 & (1 << p.index()) != 0
    }

    /// Is the set empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of protocols in the set.
    pub fn len(self) -> usize {
        (self.0 & 0b11111).count_ones() as usize
    }

    /// Iterate over members in display order.
    pub fn iter(self) -> impl Iterator<Item = Protocol> {
        Protocol::ALL.into_iter().filter(move |p| self.contains(*p))
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: ProtoSet) -> ProtoSet {
        ProtoSet(self.0 | other.0)
    }

    /// Intersection.
    #[must_use]
    pub fn intersect(self, other: ProtoSet) -> ProtoSet {
        ProtoSet(self.0 & other.0)
    }
}

impl FromIterator<Protocol> for ProtoSet {
    fn from_iter<I: IntoIterator<Item = Protocol>>(ps: I) -> ProtoSet {
        let mut s = ProtoSet::EMPTY;
        for p in ps {
            s = s.with(p);
        }
        s
    }
}

impl fmt::Display for ProtoSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        let mut first = true;
        for p in self.iter() {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_stable_and_distinct() {
        let idx: Vec<usize> = Protocol::ALL.iter().map(|p| p.index()).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn set_operations() {
        let s = ProtoSet::only(Protocol::Icmp).with(Protocol::Udp53);
        assert!(s.contains(Protocol::Icmp));
        assert!(s.contains(Protocol::Udp53));
        assert!(!s.contains(Protocol::Tcp80));
        assert_eq!(s.len(), 2);
        assert_eq!(s.without(Protocol::Icmp).len(), 1);
        assert_eq!(ProtoSet::ALL.len(), 5);
        assert!(ProtoSet::EMPTY.is_empty());
    }

    #[test]
    fn union_intersect() {
        let a = ProtoSet::only(Protocol::Icmp).with(Protocol::Tcp80);
        let b = ProtoSet::only(Protocol::Tcp80).with(Protocol::Tcp443);
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersect(b), ProtoSet::only(Protocol::Tcp80));
    }

    #[test]
    fn iter_order_matches_paper() {
        let all: Vec<Protocol> = ProtoSet::ALL.iter().collect();
        assert_eq!(all, Protocol::ALL.to_vec());
    }

    #[test]
    fn display() {
        let s = ProtoSet::only(Protocol::Icmp).with(Protocol::Udp443);
        assert_eq!(s.to_string(), "ICMP+UDP/443");
        assert_eq!(ProtoSet::EMPTY.to_string(), "∅");
        assert_eq!(Protocol::Tcp80.to_string(), "TCP/80");
    }

    #[test]
    fn ports() {
        assert_eq!(Protocol::Icmp.port(), None);
        assert_eq!(Protocol::Udp443.port(), Some(443));
        assert_eq!(Protocol::Tcp80.port(), Some(80));
    }
}
