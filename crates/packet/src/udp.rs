//! UDP datagrams (RFC 768 over IPv6 per RFC 8200).

use crate::checksum::{transport_checksum, verify_transport};
use crate::{proto, PacketError};
use std::net::Ipv6Addr;

/// A UDP datagram (header + payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl UdpDatagram {
    /// Build a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: Vec<u8>) -> Self {
        UdpDatagram {
            src_port,
            dst_port,
            payload,
        }
    }

    /// Encode with checksum (mandatory over IPv6; an all-zero checksum is
    /// transmitted as 0xffff per RFC 8200 §8.1).
    pub fn emit(&self, src: Ipv6Addr, dst: Ipv6Addr) -> Vec<u8> {
        let len = 8 + self.payload.len();
        let mut out = Vec::with_capacity(len);
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&(len as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(&self.payload);
        let mut ck = transport_checksum(src, dst, proto::UDP, &out);
        if ck == 0 {
            ck = 0xffff;
        }
        out[6..8].copy_from_slice(&ck.to_be_bytes());
        out
    }

    /// Parse and verify checksum + length.
    pub fn parse(src: Ipv6Addr, dst: Ipv6Addr, buf: &[u8]) -> Result<UdpDatagram, PacketError> {
        if buf.len() < 8 {
            return Err(PacketError::Truncated);
        }
        let len = usize::from(u16::from_be_bytes([buf[4], buf[5]]));
        if len != buf.len() {
            return Err(PacketError::BadLength);
        }
        if !verify_transport(src, dst, proto::UDP, buf) {
            return Err(PacketError::BadChecksum);
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            payload: buf[8..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Ipv6Addr, Ipv6Addr) {
        (
            "2001:db8::1".parse().unwrap(),
            "2001:db8::53".parse().unwrap(),
        )
    }

    #[test]
    fn roundtrip() {
        let (s, d) = pair();
        let u = UdpDatagram::new(40000, 53, b"query".to_vec());
        let bytes = u.emit(s, d);
        assert_eq!(UdpDatagram::parse(s, d, &bytes).unwrap(), u);
    }

    #[test]
    fn length_enforced() {
        let (s, d) = pair();
        let mut bytes = UdpDatagram::new(1, 2, vec![7; 4]).emit(s, d);
        bytes.push(0);
        assert_eq!(
            UdpDatagram::parse(s, d, &bytes),
            Err(PacketError::BadLength)
        );
    }

    #[test]
    fn checksum_enforced() {
        let (s, d) = pair();
        let mut bytes = UdpDatagram::new(1, 2, vec![7; 4]).emit(s, d);
        bytes[8] ^= 0xff;
        assert_eq!(
            UdpDatagram::parse(s, d, &bytes),
            Err(PacketError::BadChecksum)
        );
    }

    #[test]
    fn empty_payload_ok() {
        let (s, d) = pair();
        let u = UdpDatagram::new(9, 9, vec![]);
        assert_eq!(UdpDatagram::parse(s, d, &u.emit(s, d)).unwrap(), u);
    }
}
