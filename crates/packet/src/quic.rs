//! Minimal QUIC long-header packets: enough for a UDP/443 liveness probe.
//!
//! The paper's UDP/443 scan detects QUIC-capable hosts. A scanner only
//! needs to (a) emit a syntactically plausible Initial and (b) recognize
//! *any* QUIC long-header reply — typically a Version Negotiation, which
//! servers must send for unknown versions (RFC 8999). We deliberately use
//! a reserved "greasing" version to elicit exactly that, sidestepping the
//! crypto handshake entirely (documented simplification).

use crate::PacketError;

/// The greasing version the probe advertises (RFC 9000 §15 pattern
/// `0x?a?a?a?a` is reserved to force version negotiation).
pub const PROBE_VERSION: u32 = 0x1a2a_3a4a;

/// Minimum Initial size demanded by QUIC anti-amplification rules.
pub const MIN_INITIAL_SIZE: usize = 1200;

/// A QUIC long-header packet in the pre-crypto shape the prober uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuicLongHeader {
    /// QUIC version field (0 = version negotiation).
    pub version: u32,
    /// Destination connection id.
    pub dcid: Vec<u8>,
    /// Source connection id.
    pub scid: Vec<u8>,
    /// For version negotiation packets: the versions the peer supports.
    pub supported_versions: Vec<u32>,
}

impl QuicLongHeader {
    /// Build a client Initial-shaped probe, padded to `MIN_INITIAL_SIZE`.
    ///
    /// # Panics
    /// Panics if a connection id exceeds 20 bytes.
    pub fn initial(dcid: &[u8], scid: &[u8]) -> Vec<u8> {
        assert!(dcid.len() <= 20 && scid.len() <= 20, "cid too long");
        let mut out = Vec::with_capacity(MIN_INITIAL_SIZE);
        out.push(0xc0); // long header, fixed bit, type=Initial
        out.extend_from_slice(&PROBE_VERSION.to_be_bytes());
        out.push(dcid.len() as u8);
        out.extend_from_slice(dcid);
        out.push(scid.len() as u8);
        out.extend_from_slice(scid);
        out.resize(MIN_INITIAL_SIZE, 0);
        out
    }

    /// Build a Version Negotiation reply: version field zero, server's
    /// supported versions appended (RFC 8999 §6).
    pub fn version_negotiation(dcid: &[u8], scid: &[u8], versions: &[u32]) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(0x80); // long header form bit
        out.extend_from_slice(&0u32.to_be_bytes());
        out.push(dcid.len() as u8);
        out.extend_from_slice(dcid);
        out.push(scid.len() as u8);
        out.extend_from_slice(scid);
        for v in versions {
            out.extend_from_slice(&v.to_be_bytes());
        }
        out
    }

    /// Parse any long-header packet.
    pub fn parse(buf: &[u8]) -> Result<QuicLongHeader, PacketError> {
        if buf.len() < 7 {
            return Err(PacketError::Truncated);
        }
        if buf[0] & 0x80 == 0 {
            return Err(PacketError::Malformed("not a QUIC long header"));
        }
        let version = u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]);
        let mut pos = 5;
        let dcid_len = usize::from(*buf.get(pos).ok_or(PacketError::Truncated)?);
        pos += 1;
        if dcid_len > 20 || pos + dcid_len > buf.len() {
            return Err(PacketError::Malformed("dcid"));
        }
        let dcid = buf[pos..pos + dcid_len].to_vec();
        pos += dcid_len;
        let scid_len = usize::from(*buf.get(pos).ok_or(PacketError::Truncated)?);
        pos += 1;
        if scid_len > 20 || pos + scid_len > buf.len() {
            return Err(PacketError::Malformed("scid"));
        }
        let scid = buf[pos..pos + scid_len].to_vec();
        pos += scid_len;
        let mut supported_versions = Vec::new();
        if version == 0 {
            // Version negotiation: rest is a version list.
            let rest = &buf[pos..];
            if rest.is_empty() || !rest.len().is_multiple_of(4) {
                return Err(PacketError::Malformed("version list"));
            }
            for c in rest.chunks_exact(4) {
                supported_versions.push(u32::from_be_bytes([c[0], c[1], c[2], c[3]]));
            }
        }
        Ok(QuicLongHeader {
            version,
            dcid,
            scid,
            supported_versions,
        })
    }

    /// Is this a version negotiation packet?
    pub fn is_version_negotiation(&self) -> bool {
        self.version == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_shape() {
        let b = QuicLongHeader::initial(&[1, 2, 3, 4, 5, 6, 7, 8], &[9, 9]);
        assert_eq!(b.len(), MIN_INITIAL_SIZE);
        let p = QuicLongHeader::parse(&b).unwrap();
        assert_eq!(p.version, PROBE_VERSION);
        assert_eq!(p.dcid, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(p.scid, vec![9, 9]);
        assert!(!p.is_version_negotiation());
    }

    #[test]
    fn version_negotiation_roundtrip() {
        let vn = QuicLongHeader::version_negotiation(&[7], &[8], &[1, 0x6b33_43cf]);
        let p = QuicLongHeader::parse(&vn).unwrap();
        assert!(p.is_version_negotiation());
        assert_eq!(p.supported_versions, vec![1, 0x6b33_43cf]);
        assert_eq!(p.dcid, vec![7]);
    }

    #[test]
    fn short_header_rejected() {
        assert!(QuicLongHeader::parse(&[0x40; 20]).is_err());
        assert!(QuicLongHeader::parse(&[0xc0, 0, 0]).is_err());
    }

    #[test]
    fn bad_version_list_rejected() {
        let mut vn = QuicLongHeader::version_negotiation(&[7], &[8], &[1]);
        vn.push(0xff); // version list no longer a multiple of 4
        assert!(QuicLongHeader::parse(&vn).is_err());
        // Empty version list also malformed.
        let vn2 = QuicLongHeader::version_negotiation(&[7], &[8], &[]);
        assert!(QuicLongHeader::parse(&vn2).is_err());
    }

    #[test]
    fn oversized_cid_rejected() {
        let mut b = vec![0xc0];
        b.extend_from_slice(&1u32.to_be_bytes());
        b.push(21); // dcid_len > 20
        b.extend_from_slice(&[0; 30]);
        assert!(QuicLongHeader::parse(&b).is_err());
    }
}
