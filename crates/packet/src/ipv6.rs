//! The fixed IPv6 header (RFC 8200) and full-datagram framing.

use crate::icmpv6::Icmpv6Message;
use crate::tcp::TcpSegment;
use crate::udp::UdpDatagram;
use crate::{proto, PacketError};
use std::net::Ipv6Addr;

/// Length of the fixed IPv6 header in bytes.
pub const HEADER_LEN: usize = 40;

/// The fixed IPv6 header. Extension headers are not modelled — the paper's
/// probes never emit them and the simulator never needs them (documented
/// omission, smoltcp-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv6Header {
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
    /// IANA next-header value.
    pub next_header: u8,
    /// Remaining hop budget.
    pub hop_limit: u8,
    /// Traffic class byte.
    pub traffic_class: u8,
    /// 20-bit flow label.
    pub flow_label: u32,
    /// Payload length in bytes.
    pub payload_len: u16,
}

impl Ipv6Header {
    /// Emit the 40 header bytes.
    pub fn emit(&self) -> [u8; HEADER_LEN] {
        let mut b = [0u8; HEADER_LEN];
        let vtf: u32 =
            (6u32 << 28) | (u32::from(self.traffic_class) << 20) | (self.flow_label & 0x000f_ffff);
        b[0..4].copy_from_slice(&vtf.to_be_bytes());
        b[4..6].copy_from_slice(&self.payload_len.to_be_bytes());
        b[6] = self.next_header;
        b[7] = self.hop_limit;
        b[8..24].copy_from_slice(&self.src.octets());
        b[24..40].copy_from_slice(&self.dst.octets());
        b
    }

    /// Parse the fixed header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Ipv6Header, PacketError> {
        if buf.len() < HEADER_LEN {
            return Err(PacketError::Truncated);
        }
        let vtf = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
        let version = (vtf >> 28) as u8;
        if version != 6 {
            return Err(PacketError::BadVersion(version));
        }
        let mut src = [0u8; 16];
        src.copy_from_slice(&buf[8..24]);
        let mut dst = [0u8; 16];
        dst.copy_from_slice(&buf[24..40]);
        Ok(Ipv6Header {
            src: Ipv6Addr::from(src),
            dst: Ipv6Addr::from(dst),
            next_header: buf[6],
            hop_limit: buf[7],
            traffic_class: ((vtf >> 20) & 0xff) as u8,
            flow_label: vtf & 0x000f_ffff,
            payload_len: u16::from_be_bytes([buf[4], buf[5]]),
        })
    }
}

/// A complete IPv6 datagram: header plus raw payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Header.
    pub header: Ipv6Header,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Datagram {
    /// Default hop limit for probe packets (matches Linux default).
    pub const DEFAULT_HOP_LIMIT: u8 = 64;

    /// Build a datagram around an already-encoded transport payload.
    pub fn new(
        src: Ipv6Addr,
        dst: Ipv6Addr,
        next_header: u8,
        hop_limit: u8,
        payload: Vec<u8>,
    ) -> Self {
        let payload_len =
            u16::try_from(payload.len()).expect("payload exceeds 64 KiB (jumbograms unsupported)");
        Datagram {
            header: Ipv6Header {
                src,
                dst,
                next_header,
                hop_limit,
                traffic_class: 0,
                flow_label: 0,
                payload_len,
            },
            payload,
        }
    }

    /// Build an ICMPv6 datagram (computes the transport checksum).
    pub fn icmpv6(src: Ipv6Addr, dst: Ipv6Addr, hop_limit: u8, msg: Icmpv6Message) -> Self {
        let payload = msg.emit(src, dst);
        Datagram::new(src, dst, proto::ICMPV6, hop_limit, payload)
    }

    /// Build a TCP datagram (computes the transport checksum).
    pub fn tcp(src: Ipv6Addr, dst: Ipv6Addr, hop_limit: u8, seg: &TcpSegment) -> Self {
        let payload = seg.emit(src, dst);
        Datagram::new(src, dst, proto::TCP, hop_limit, payload)
    }

    /// Build a UDP datagram (computes the transport checksum).
    pub fn udp(src: Ipv6Addr, dst: Ipv6Addr, hop_limit: u8, dgram: &UdpDatagram) -> Self {
        let payload = dgram.emit(src, dst);
        Datagram::new(src, dst, proto::UDP, hop_limit, payload)
    }

    /// Serialize header + payload.
    pub fn emit(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.header.emit());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse a full datagram; the payload length field must match the
    /// buffer exactly (the simulator never fragments).
    pub fn parse(buf: &[u8]) -> Result<Datagram, PacketError> {
        let header = Ipv6Header::parse(buf)?;
        let want = usize::from(header.payload_len);
        let body = &buf[HEADER_LEN..];
        if body.len() != want {
            return Err(PacketError::BadLength);
        }
        Ok(Datagram {
            header,
            payload: body.to_vec(),
        })
    }

    /// Parse and decode the transport payload in one step.
    pub fn parse_transport(buf: &[u8]) -> Result<(Ipv6Header, crate::Transport), PacketError> {
        let d = Datagram::parse(buf)?;
        let t = crate::Transport::parse(&d.header, &d.payload)?;
        Ok((d.header, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn header_roundtrip() {
        let h = Ipv6Header {
            src: addr("2001:db8::1"),
            dst: addr("2001:db8::2"),
            next_header: 58,
            hop_limit: 64,
            traffic_class: 0xa5,
            flow_label: 0xbeef,
            payload_len: 123,
        };
        let bytes = h.emit();
        assert_eq!(bytes.len(), 40);
        assert_eq!(bytes[0] >> 4, 6);
        let parsed = Ipv6Header::parse(&bytes).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn rejects_bad_version() {
        let h = Ipv6Header {
            src: addr("::1"),
            dst: addr("::2"),
            next_header: 6,
            hop_limit: 1,
            traffic_class: 0,
            flow_label: 0,
            payload_len: 0,
        };
        let mut bytes = h.emit();
        bytes[0] = 0x45; // IPv4-style version nibble
        assert_eq!(Ipv6Header::parse(&bytes), Err(PacketError::BadVersion(4)));
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(Ipv6Header::parse(&[0u8; 10]), Err(PacketError::Truncated));
    }

    #[test]
    fn datagram_length_must_match() {
        let d = Datagram::new(addr("::1"), addr("::2"), 17, 64, vec![1, 2, 3]);
        let mut bytes = d.emit();
        assert_eq!(Datagram::parse(&bytes).unwrap(), d);
        bytes.push(0); // trailing junk
        assert_eq!(Datagram::parse(&bytes), Err(PacketError::BadLength));
    }

    #[test]
    fn flow_label_masked_to_20_bits() {
        let h = Ipv6Header {
            src: addr("::1"),
            dst: addr("::2"),
            next_header: 6,
            hop_limit: 1,
            traffic_class: 0,
            flow_label: 0xfff_ffff, // wider than 20 bits
            payload_len: 0,
        };
        let parsed = Ipv6Header::parse(&h.emit()).unwrap();
        assert_eq!(parsed.flow_label, 0xf_ffff);
    }
}
