//! IPv6/ICMPv6/TCP/UDP wire formats for the `expanse` toolkit.
//!
//! The probers (`expanse-zmap6`, `expanse-scamper6`) build **byte-exact
//! packets** and the network simulator parses them — the same contract a
//! raw socket would impose. This keeps checksum, TCP-option, and
//! fingerprinting code honest instead of mocked.
//!
//! Design follows the smoltcp idiom of explicit representation structs with
//! `emit`/`parse` pairs, but favours owned [`Vec<u8>`] buffers over
//! zero-copy views: the simulator stores packets in event queues, so
//! ownership is the natural shape, and packet rates in the simulation are
//! far below where zero-copy would matter.
//!
//! Layers:
//! - [`ipv6`] — fixed 40-byte IPv6 header + full datagram framing
//! - [`icmpv6`] — echo request/reply, destination unreachable, time exceeded
//! - [`tcp`] — segments with full option support (MSS, WScale, SACK-permitted,
//!   timestamps) — §5.4 of the paper fingerprints aliased prefixes via the
//!   `MSS-SACK-TS-WS` option set
//! - [`udp`] — datagrams
//! - [`dns`] — minimal DNS queries/responses for the UDP/53 probe
//! - [`quic`] — minimal QUIC Initial / Version Negotiation for UDP/443
//! - [`checksum`] — the Internet checksum with the IPv6 pseudo-header

pub mod checksum;
pub mod dns;
pub mod icmpv6;
pub mod ipv6;
pub mod probe;
pub mod quic;
pub mod tcp;
pub mod udp;

pub use icmpv6::Icmpv6Message;
pub use ipv6::{Datagram, Ipv6Header};
pub use probe::{ProtoSet, Protocol};
pub use tcp::{TcpFlags, TcpOption, TcpSegment};
pub use udp::UdpDatagram;

use std::fmt;

/// IANA protocol numbers used in the workspace.
pub mod proto {
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
    /// ICMPv6.
    pub const ICMPV6: u8 = 58;
}

/// Errors from parsing wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// Buffer shorter than the fixed header.
    Truncated,
    /// IP version field was not 6.
    BadVersion(u8),
    /// Checksum verification failed.
    BadChecksum,
    /// A length field disagrees with the buffer.
    BadLength,
    /// A field held an unsupported or malformed value.
    Malformed(&'static str),
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated => write!(f, "truncated packet"),
            PacketError::BadVersion(v) => write!(f, "bad IP version {v}"),
            PacketError::BadChecksum => write!(f, "checksum mismatch"),
            PacketError::BadLength => write!(f, "length field mismatch"),
            PacketError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for PacketError {}

/// Parsed transport-layer payload of an IPv6 datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// Icmpv6.
    Icmpv6(Icmpv6Message),
    /// A TCP segment.
    Tcp(TcpSegment),
    /// A UDP datagram.
    Udp(UdpDatagram),
    /// Unknown next-header: raw payload preserved.
    Other(u8, Vec<u8>),
}

impl Transport {
    /// Parse the payload of `header` according to its next-header field,
    /// verifying transport checksums against the pseudo-header.
    pub fn parse(header: &Ipv6Header, payload: &[u8]) -> Result<Transport, PacketError> {
        match header.next_header {
            proto::ICMPV6 => Ok(Transport::Icmpv6(Icmpv6Message::parse(
                header.src, header.dst, payload,
            )?)),
            proto::TCP => Ok(Transport::Tcp(TcpSegment::parse(
                header.src, header.dst, payload,
            )?)),
            proto::UDP => Ok(Transport::Udp(UdpDatagram::parse(
                header.src, header.dst, payload,
            )?)),
            other => Ok(Transport::Other(other, payload.to_vec())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv6Addr;

    #[test]
    fn transport_dispatch() {
        let src: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let dst: Ipv6Addr = "2001:db8::2".parse().unwrap();
        let echo = Icmpv6Message::EchoRequest {
            ident: 7,
            seq: 1,
            payload: vec![1, 2, 3],
        };
        let dgram = Datagram::icmpv6(src, dst, 64, echo.clone());
        let bytes = dgram.emit();
        let parsed = Datagram::parse(&bytes).unwrap();
        match Transport::parse(&parsed.header, &parsed.payload).unwrap() {
            Transport::Icmpv6(m) => assert_eq!(m, echo),
            other => panic!("wrong transport: {other:?}"),
        }
    }

    #[test]
    fn unknown_next_header_preserved() {
        let src: Ipv6Addr = "::1".parse().unwrap();
        let header = Ipv6Header {
            src,
            dst: src,
            next_header: 99,
            hop_limit: 1,
            traffic_class: 0,
            flow_label: 0,
            payload_len: 2,
        };
        match Transport::parse(&header, &[0xaa, 0xbb]).unwrap() {
            Transport::Other(99, p) => assert_eq!(p, vec![0xaa, 0xbb]),
            other => panic!("wrong transport: {other:?}"),
        }
    }
}
