//! Minimal DNS wire format: enough for a UDP/53 liveness probe.
//!
//! The paper's UDP/53 scan sends a well-formed query and counts any
//! syntactically valid response as "responsive". We encode a single-question
//! query and parse response headers (id, QR, RCODE, counts). Name
//! compression pointers are followed when skipping the question section.

use crate::PacketError;

/// Common query types.
pub mod qtype {
    /// A.
    pub const A: u16 = 1;
    /// Ns.
    pub const NS: u16 = 2;
    /// Aaaa.
    pub const AAAA: u16 = 28;
    /// Ptr.
    pub const PTR: u16 = 12;
}

/// A DNS query with one question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsQuery {
    /// DNS transaction id.
    pub id: u16,
    /// Queried name (dotted form).
    pub qname: String,
    /// Query type.
    pub qtype: u16,
    /// Recursion desired.
    pub rd: bool,
}

impl DnsQuery {
    /// Standard recursive query.
    pub fn new(id: u16, qname: &str, qtype: u16) -> Self {
        DnsQuery {
            id,
            qname: qname.to_string(),
            qtype,
            rd: true,
        }
    }

    /// Encode to wire bytes.
    ///
    /// # Panics
    /// Panics if a label exceeds 63 bytes.
    pub fn emit(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(17 + self.qname.len());
        out.extend_from_slice(&self.id.to_be_bytes());
        let flags: u16 = if self.rd { 0x0100 } else { 0x0000 };
        out.extend_from_slice(&flags.to_be_bytes());
        out.extend_from_slice(&1u16.to_be_bytes()); // QDCOUNT
        out.extend_from_slice(&[0; 6]); // AN/NS/AR counts
        emit_name(&mut out, &self.qname);
        out.extend_from_slice(&self.qtype.to_be_bytes());
        out.extend_from_slice(&1u16.to_be_bytes()); // IN class
        out
    }
}

/// Encode a dotted name as length-prefixed labels.
fn emit_name(out: &mut Vec<u8>, name: &str) {
    for label in name.split('.').filter(|l| !l.is_empty()) {
        assert!(label.len() <= 63, "DNS label too long");
        out.push(label.len() as u8);
        out.extend_from_slice(label.as_bytes());
    }
    out.push(0);
}

/// Parsed DNS message header view (query or response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsHeader {
    /// DNS transaction id.
    pub id: u16,
    /// True for responses.
    pub qr: bool,
    /// DNS response code (0 = NOERROR, 3 = NXDOMAIN).
    pub rcode: u8,
    /// Question count.
    pub qdcount: u16,
    /// Answer count.
    pub ancount: u16,
}

impl DnsHeader {
    /// Parse the 12-byte header.
    pub fn parse(buf: &[u8]) -> Result<DnsHeader, PacketError> {
        if buf.len() < 12 {
            return Err(PacketError::Truncated);
        }
        let flags = u16::from_be_bytes([buf[2], buf[3]]);
        Ok(DnsHeader {
            id: u16::from_be_bytes([buf[0], buf[1]]),
            qr: flags & 0x8000 != 0,
            rcode: (flags & 0x000f) as u8,
            qdcount: u16::from_be_bytes([buf[4], buf[5]]),
            ancount: u16::from_be_bytes([buf[6], buf[7]]),
        })
    }
}

/// Skip an encoded name starting at `pos`; returns the position after it.
/// Follows the "pointer terminates the name" rule (RFC 1035 §4.1.4).
fn skip_name(buf: &[u8], mut pos: usize) -> Result<usize, PacketError> {
    loop {
        let &len = buf.get(pos).ok_or(PacketError::Truncated)?;
        match len {
            0 => return Ok(pos + 1),
            l if l & 0xc0 == 0xc0 => {
                // Compression pointer: two bytes, terminates the name.
                if pos + 1 >= buf.len() {
                    return Err(PacketError::Truncated);
                }
                return Ok(pos + 2);
            }
            l if l & 0xc0 != 0 => return Err(PacketError::Malformed("dns label type")),
            l => pos += 1 + usize::from(l),
        }
    }
}

/// Build a minimal response to `query` bytes: echoes id and question,
/// sets QR/RA, given rcode, and `answers` synthetic A/AAAA-shaped records.
///
/// The simulator's DNS hosts use this; the prober only checks
/// [`DnsHeader`] fields, so record contents are opaque 16-byte blobs.
pub fn build_response(query: &[u8], rcode: u8, answers: u16) -> Result<Vec<u8>, PacketError> {
    let h = DnsHeader::parse(query)?;
    if h.qr {
        return Err(PacketError::Malformed("response to a response"));
    }
    // Locate end of question section to copy it.
    let mut pos = 12;
    for _ in 0..h.qdcount {
        pos = skip_name(query, pos)?;
        pos += 4; // qtype + qclass
        if pos > query.len() {
            return Err(PacketError::Truncated);
        }
    }
    let mut out = Vec::with_capacity(pos + usize::from(answers) * 28);
    out.extend_from_slice(&h.id.to_be_bytes());
    let flags: u16 = 0x8180 | u16::from(rcode); // QR + RD + RA
    out.extend_from_slice(&flags.to_be_bytes());
    out.extend_from_slice(&h.qdcount.to_be_bytes());
    out.extend_from_slice(&answers.to_be_bytes());
    out.extend_from_slice(&[0; 4]);
    out.extend_from_slice(&query[12..pos]);
    for i in 0..answers {
        out.extend_from_slice(&[0xc0, 0x0c]); // pointer to question name
        out.extend_from_slice(&qtype::AAAA.to_be_bytes());
        out.extend_from_slice(&1u16.to_be_bytes()); // IN
        out.extend_from_slice(&60u32.to_be_bytes()); // TTL
        out.extend_from_slice(&16u16.to_be_bytes()); // RDLENGTH
        let mut addr = [0u8; 16];
        addr[15] = i as u8 + 1;
        out.extend_from_slice(&addr);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_emit_shape() {
        let q = DnsQuery::new(0x1234, "example.com", qtype::AAAA);
        let b = q.emit();
        assert_eq!(&b[0..2], &[0x12, 0x34]);
        // 12 header + 1+7 + 1+3 + 1 root + 4 = 29
        assert_eq!(b.len(), 29);
        assert_eq!(b[12], 7);
        assert_eq!(&b[13..20], b"example");
        let h = DnsHeader::parse(&b).unwrap();
        assert!(!h.qr);
        assert_eq!(h.qdcount, 1);
    }

    #[test]
    fn response_roundtrip() {
        let q = DnsQuery::new(7, "ns1.example.org", qtype::A).emit();
        let r = build_response(&q, 0, 2).unwrap();
        let h = DnsHeader::parse(&r).unwrap();
        assert!(h.qr);
        assert_eq!(h.id, 7);
        assert_eq!(h.rcode, 0);
        assert_eq!(h.ancount, 2);
        assert_eq!(h.qdcount, 1);
    }

    #[test]
    fn nxdomain_response() {
        let q = DnsQuery::new(9, "nope.invalid", qtype::PTR).emit();
        let r = build_response(&q, 3, 0).unwrap();
        let h = DnsHeader::parse(&r).unwrap();
        assert_eq!(h.rcode, 3);
        assert_eq!(h.ancount, 0);
    }

    #[test]
    fn reject_response_to_response() {
        let q = DnsQuery::new(7, "a.b", qtype::A).emit();
        let r = build_response(&q, 0, 1).unwrap();
        assert!(build_response(&r, 0, 1).is_err());
    }

    #[test]
    fn truncated_header() {
        assert_eq!(DnsHeader::parse(&[0; 5]), Err(PacketError::Truncated));
    }

    #[test]
    fn skip_name_with_pointer() {
        // name: 1 byte label "x" + pointer
        let buf = [1, b'x', 0xc0, 0x00, 0xde, 0xad];
        assert_eq!(skip_name(&buf, 0).unwrap(), 4);
    }

    #[test]
    fn root_name_query() {
        let q = DnsQuery::new(1, ".", qtype::NS);
        let b = q.emit();
        assert_eq!(b[12], 0); // root label only
        let r = build_response(&b, 0, 1).unwrap();
        assert_eq!(DnsHeader::parse(&r).unwrap().ancount, 1);
    }
}
