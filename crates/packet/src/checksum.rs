//! The Internet checksum (RFC 1071) with the IPv6 pseudo-header (RFC 8200 §8.1).

use std::net::Ipv6Addr;

/// Accumulate 16-bit one's-complement words.
#[derive(Debug, Default, Clone, Copy)]
pub struct Accum(u32);

impl Accum {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Accum(0)
    }

    /// Add a big-endian byte slice (odd tail is zero-padded).
    pub fn data(mut self, bytes: &[u8]) -> Self {
        let mut chunks = bytes.chunks_exact(2);
        for c in &mut chunks {
            self.0 += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.0 += u32::from(u16::from_be_bytes([*last, 0]));
        }
        self
    }

    /// Add one 16-bit word.
    pub fn word(mut self, w: u16) -> Self {
        self.0 += u32::from(w);
        self
    }

    /// Add a 32-bit value as two words.
    pub fn dword(self, d: u32) -> Self {
        self.word((d >> 16) as u16).word(d as u16)
    }

    /// Add the IPv6 pseudo-header for an upper-layer packet.
    pub fn pseudo_header(self, src: Ipv6Addr, dst: Ipv6Addr, next_header: u8, len: u32) -> Self {
        self.data(&src.octets())
            .data(&dst.octets())
            .dword(len)
            .dword(u32::from(next_header))
    }

    /// Fold and complement into the final checksum value.
    pub fn finish(self) -> u16 {
        let mut s = self.0;
        while s >> 16 != 0 {
            s = (s & 0xffff) + (s >> 16);
        }
        !(s as u16)
    }
}

/// Checksum of an upper-layer packet (`payload` must contain the transport
/// header with its checksum field zeroed).
pub fn transport_checksum(src: Ipv6Addr, dst: Ipv6Addr, next_header: u8, payload: &[u8]) -> u16 {
    Accum::new()
        .pseudo_header(src, dst, next_header, payload.len() as u32)
        .data(payload)
        .finish()
}

/// Verify an upper-layer packet whose checksum field is in place: the sum
/// over pseudo-header + payload must fold to zero (i.e. `finish() == 0`
/// before complementing ⇒ complemented result is 0xffff... we check by
/// recomputing).
pub fn verify_transport(src: Ipv6Addr, dst: Ipv6Addr, next_header: u8, payload: &[u8]) -> bool {
    // Sum including the transmitted checksum must be 0xffff before the
    // final complement; `finish` complements, so the result must be 0.
    Accum::new()
        .pseudo_header(src, dst, next_header, payload.len() as u32)
        .data(payload)
        .finish()
        == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // RFC 1071 example words: 0x0001 0xf203 0xf4f5 0xf6f7 -> sum 0xddf2,
        // checksum = !0xddf2 = 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(Accum::new().data(&data).finish(), 0x220d);
    }

    #[test]
    fn odd_length_padding() {
        // Trailing odd byte acts as high byte of a zero-padded word.
        let a = Accum::new().data(&[0xab]).finish();
        let b = Accum::new().data(&[0xab, 0x00]).finish();
        assert_eq!(a, b);
    }

    #[test]
    fn verify_roundtrip() {
        let src: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let dst: Ipv6Addr = "2001:db8::2".parse().unwrap();
        let mut packet = vec![0x80, 0x00, 0x00, 0x00, 0x12, 0x34, 0x00, 0x01, 0xde, 0xad];
        let ck = transport_checksum(src, dst, 58, &packet);
        packet[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(verify_transport(src, dst, 58, &packet));
        packet[9] ^= 0xff;
        assert!(!verify_transport(src, dst, 58, &packet));
    }

    #[test]
    fn pseudo_header_depends_on_addrs() {
        let a: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let b: Ipv6Addr = "2001:db8::2".parse().unwrap();
        let payload = [1u8, 2, 3, 4];
        let c1 = transport_checksum(a, b, 6, &payload);
        let c2 = transport_checksum(a, a, 6, &payload);
        assert_ne!(c1, c2);
    }
}
