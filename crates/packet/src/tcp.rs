//! TCP segments with full options support.
//!
//! §5.4 of the paper fingerprints hosts by sending SYNs carrying the
//! commonly supported option set `MSS-SACK-TS-WS` (with MSS and window
//! scale set to 1 to provoke distinctive replies) and comparing the
//! *optionstext* — the ordered option/padding string — plus option values
//! across addresses of a prefix.

use crate::checksum::{transport_checksum, verify_transport};
use crate::{proto, PacketError};
use std::fmt;
use std::net::Ipv6Addr;

/// TCP flag bits (lower 8 bits of the flags field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN: no more data from sender.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN: synchronize sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST: reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// Psh.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// Acknowledgment number.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG: urgent pointer significant.
    pub const URG: TcpFlags = TcpFlags(0x20);
    /// SYN|ACK, the fingerprint-bearing reply.
    pub const SYN_ACK: TcpFlags = TcpFlags(0x12);
    /// RST|ACK, the "port closed" reply.
    pub const RST_ACK: TcpFlags = TcpFlags(0x14);

    /// Does `self` contain all bits of `other`?
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of flag sets.
    pub fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
            (TcpFlags::URG, "URG"),
        ];
        let mut first = true;
        for (flag, name) in names {
            if self.contains(flag) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "-")?;
        }
        Ok(())
    }
}

/// A TCP option as it appears on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpOption {
    /// End of option list (kind 0).
    Eol,
    /// No-operation padding (kind 1).
    Nop,
    /// Maximum segment size (kind 2).
    Mss(u16),
    /// Window scale (kind 3).
    WindowScale(u8),
    /// SACK permitted (kind 4).
    SackPermitted,
    /// Timestamps (kind 8): value and echo reply.
    Timestamps {
        /// Sender timestamp value.
        tsval: u32,
        /// Echoed peer timestamp.
        tsecr: u32,
    },
    /// Anything else, preserved raw.
    Unknown {
        /// Option kind byte.
        kind: u8,
        /// Option data (between length byte and next option).
        data: Vec<u8>,
    },
}

impl TcpOption {
    /// Encoded length in bytes.
    pub fn wire_len(&self) -> usize {
        match self {
            TcpOption::Eol | TcpOption::Nop => 1,
            TcpOption::Mss(_) => 4,
            TcpOption::WindowScale(_) => 3,
            TcpOption::SackPermitted => 2,
            TcpOption::Timestamps { .. } => 10,
            TcpOption::Unknown { data, .. } => 2 + data.len(),
        }
    }

    /// The *optionstext* token (§5.4): order-preserving, value-free.
    pub fn text_token(&self) -> String {
        match self {
            TcpOption::Eol => "E".to_string(),
            TcpOption::Nop => "N".to_string(),
            TcpOption::Mss(_) => "MSS".to_string(),
            TcpOption::WindowScale(_) => "WS".to_string(),
            TcpOption::SackPermitted => "SACK".to_string(),
            TcpOption::Timestamps { .. } => "TS".to_string(),
            TcpOption::Unknown { kind, .. } => format!("U{kind}"),
        }
    }

    fn emit_into(&self, out: &mut Vec<u8>) {
        match self {
            TcpOption::Eol => out.push(0),
            TcpOption::Nop => out.push(1),
            TcpOption::Mss(v) => {
                out.extend_from_slice(&[2, 4]);
                out.extend_from_slice(&v.to_be_bytes());
            }
            TcpOption::WindowScale(v) => out.extend_from_slice(&[3, 3, *v]),
            TcpOption::SackPermitted => out.extend_from_slice(&[4, 2]),
            TcpOption::Timestamps { tsval, tsecr } => {
                out.extend_from_slice(&[8, 10]);
                out.extend_from_slice(&tsval.to_be_bytes());
                out.extend_from_slice(&tsecr.to_be_bytes());
            }
            TcpOption::Unknown { kind, data } => {
                out.push(*kind);
                out.push((data.len() + 2) as u8);
                out.extend_from_slice(data);
            }
        }
    }

    /// Parse all options from an options block. Stops at EOL. Malformed
    /// lengths yield `PacketError::Malformed`.
    pub fn parse_all(mut buf: &[u8]) -> Result<Vec<TcpOption>, PacketError> {
        let mut out = Vec::new();
        while let Some(&kind) = buf.first() {
            match kind {
                0 => {
                    out.push(TcpOption::Eol);
                    break;
                }
                1 => {
                    out.push(TcpOption::Nop);
                    buf = &buf[1..];
                }
                _ => {
                    if buf.len() < 2 {
                        return Err(PacketError::Malformed("tcp option header"));
                    }
                    let len = usize::from(buf[1]);
                    if len < 2 || len > buf.len() {
                        return Err(PacketError::Malformed("tcp option length"));
                    }
                    let data = &buf[2..len];
                    let opt = match (kind, data.len()) {
                        (2, 2) => TcpOption::Mss(u16::from_be_bytes([data[0], data[1]])),
                        (3, 1) => TcpOption::WindowScale(data[0]),
                        (4, 0) => TcpOption::SackPermitted,
                        (8, 8) => TcpOption::Timestamps {
                            tsval: u32::from_be_bytes([data[0], data[1], data[2], data[3]]),
                            tsecr: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
                        },
                        _ => TcpOption::Unknown {
                            kind,
                            data: data.to_vec(),
                        },
                    };
                    out.push(opt);
                    buf = &buf[len..];
                }
            }
        }
        Ok(out)
    }
}

/// Join option tokens into the optionstext string, e.g. `MSS-SACK-TS-N-WS`.
pub fn options_text(options: &[TcpOption]) -> String {
    options
        .iter()
        .map(TcpOption::text_token)
        .collect::<Vec<_>>()
        .join("-")
}

/// A TCP segment (header + payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// TCP flag bits.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
    /// Urgent pointer (unused by probes).
    pub urgent: u16,
    /// TCP options in wire order.
    pub options: Vec<TcpOption>,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl TcpSegment {
    /// A bare SYN probe.
    pub fn syn(src_port: u16, dst_port: u16, seq: u32) -> Self {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 65535,
            urgent: 0,
            options: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// The paper's fingerprinting SYN: options `MSS-SACK-TS-N-WS` with MSS
    /// and window scale set to 1 to trigger differing replies (§5.4).
    pub fn syn_with_options(src_port: u16, dst_port: u16, seq: u32, tsval: u32) -> Self {
        let mut s = TcpSegment::syn(src_port, dst_port, seq);
        s.options = vec![
            TcpOption::Mss(1),
            TcpOption::SackPermitted,
            TcpOption::Timestamps { tsval, tsecr: 0 },
            TcpOption::Nop,
            TcpOption::WindowScale(1),
        ];
        s
    }

    /// The options block length, padded to a multiple of 4.
    fn options_len_padded(&self) -> usize {
        let raw: usize = self.options.iter().map(TcpOption::wire_len).sum();
        raw.div_ceil(4) * 4
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        20 + self.options_len_padded()
    }

    /// Encode with checksum for transmission between `src` and `dst`.
    ///
    /// # Panics
    /// Panics if the padded options exceed the 40-byte TCP limit.
    pub fn emit(&self, src: Ipv6Addr, dst: Ipv6Addr) -> Vec<u8> {
        let header_len = self.header_len();
        assert!(header_len <= 60, "TCP options exceed 40 bytes");
        let mut out = Vec::with_capacity(header_len + self.payload.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        let offset_flags = ((header_len as u16 / 4) << 12) | u16::from(self.flags.0);
        out.extend_from_slice(&offset_flags.to_be_bytes());
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.urgent.to_be_bytes());
        for opt in &self.options {
            opt.emit_into(&mut out);
        }
        out.resize(header_len, 0); // zero padding after options
        out.extend_from_slice(&self.payload);
        let ck = transport_checksum(src, dst, proto::TCP, &out);
        out[16..18].copy_from_slice(&ck.to_be_bytes());
        out
    }

    /// Parse and verify the checksum.
    pub fn parse(src: Ipv6Addr, dst: Ipv6Addr, buf: &[u8]) -> Result<TcpSegment, PacketError> {
        if buf.len() < 20 {
            return Err(PacketError::Truncated);
        }
        if !verify_transport(src, dst, proto::TCP, buf) {
            return Err(PacketError::BadChecksum);
        }
        let offset_flags = u16::from_be_bytes([buf[12], buf[13]]);
        let header_len = usize::from(offset_flags >> 12) * 4;
        if header_len < 20 || header_len > buf.len() {
            return Err(PacketError::BadLength);
        }
        let mut options = TcpOption::parse_all(&buf[20..header_len])?;
        // Strip trailing zero padding artifacts: an EOL followed by nothing.
        while options.last() == Some(&TcpOption::Eol) {
            options.pop();
        }
        Ok(TcpSegment {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            flags: TcpFlags((offset_flags & 0xff) as u8),
            window: u16::from_be_bytes([buf[14], buf[15]]),
            urgent: u16::from_be_bytes([buf[18], buf[19]]),
            options,
            payload: buf[header_len..].to_vec(),
        })
    }

    /// Fetch the MSS option value, if present.
    pub fn mss(&self) -> Option<u16> {
        self.options.iter().find_map(|o| match o {
            TcpOption::Mss(v) => Some(*v),
            _ => None,
        })
    }

    /// Fetch the window-scale option value, if present.
    pub fn window_scale(&self) -> Option<u8> {
        self.options.iter().find_map(|o| match o {
            TcpOption::WindowScale(v) => Some(*v),
            _ => None,
        })
    }

    /// Fetch the timestamps option, if present.
    pub fn timestamps(&self) -> Option<(u32, u32)> {
        self.options.iter().find_map(|o| match o {
            TcpOption::Timestamps { tsval, tsecr } => Some((*tsval, *tsecr)),
            _ => None,
        })
    }

    /// The optionstext of this segment.
    pub fn options_text(&self) -> String {
        options_text(&self.options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Ipv6Addr, Ipv6Addr) {
        (
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
        )
    }

    #[test]
    fn bare_syn_roundtrip() {
        let (s, d) = pair();
        let seg = TcpSegment::syn(54321, 80, 0xdeadbeef);
        let bytes = seg.emit(s, d);
        assert_eq!(bytes.len(), 20);
        let parsed = TcpSegment::parse(s, d, &bytes).unwrap();
        assert_eq!(parsed, seg);
        assert!(parsed.flags.contains(TcpFlags::SYN));
        assert!(!parsed.flags.contains(TcpFlags::ACK));
    }

    #[test]
    fn options_roundtrip_preserves_order() {
        let (s, d) = pair();
        let seg = TcpSegment::syn_with_options(1000, 443, 1, 777);
        let bytes = seg.emit(s, d);
        let parsed = TcpSegment::parse(s, d, &bytes).unwrap();
        assert_eq!(parsed.options, seg.options);
        assert_eq!(parsed.options_text(), "MSS-SACK-TS-N-WS");
        assert_eq!(parsed.mss(), Some(1));
        assert_eq!(parsed.window_scale(), Some(1));
        assert_eq!(parsed.timestamps(), Some((777, 0)));
    }

    #[test]
    fn optionstext_paper_example() {
        // "MSS-SACK-TS-N-WS would represent a packet that set the Maximum
        // Segment Size, Selective ACK, Timestamps, a padding byte, and
        // Window Scale options."
        let opts = vec![
            TcpOption::Mss(1440),
            TcpOption::SackPermitted,
            TcpOption::Timestamps { tsval: 1, tsecr: 0 },
            TcpOption::Nop,
            TcpOption::WindowScale(7),
        ];
        assert_eq!(options_text(&opts), "MSS-SACK-TS-N-WS");
    }

    #[test]
    fn payload_and_flags() {
        let (s, d) = pair();
        let seg = TcpSegment {
            src_port: 80,
            dst_port: 54321,
            seq: 1,
            ack: 2,
            flags: TcpFlags::SYN_ACK,
            window: 14600,
            urgent: 0,
            options: vec![TcpOption::Mss(1440)],
            payload: b"hello".to_vec(),
        };
        let parsed = TcpSegment::parse(s, d, &seg.emit(s, d)).unwrap();
        assert_eq!(parsed, seg);
        assert_eq!(parsed.flags.to_string(), "SYN|ACK");
    }

    #[test]
    fn checksum_enforced() {
        let (s, d) = pair();
        let mut bytes = TcpSegment::syn(1, 2, 3).emit(s, d);
        bytes[4] ^= 1;
        assert_eq!(
            TcpSegment::parse(s, d, &bytes),
            Err(PacketError::BadChecksum)
        );
    }

    #[test]
    fn malformed_option_length_rejected() {
        assert!(TcpOption::parse_all(&[2, 10, 0]).is_err()); // claims 10, has 3
        assert!(TcpOption::parse_all(&[2, 1]).is_err()); // len < 2
        assert!(TcpOption::parse_all(&[2]).is_err()); // no length byte
    }

    #[test]
    fn unknown_option_preserved() {
        let opts = TcpOption::parse_all(&[254, 4, 0xaa, 0xbb]).unwrap();
        assert_eq!(
            opts,
            vec![TcpOption::Unknown {
                kind: 254,
                data: vec![0xaa, 0xbb]
            }]
        );
        assert_eq!(options_text(&opts), "U254");
    }

    #[test]
    fn eol_stops_parsing() {
        let opts = TcpOption::parse_all(&[1, 0, 2, 4, 5, 0xb4]).unwrap();
        assert_eq!(opts, vec![TcpOption::Nop, TcpOption::Eol]);
    }

    #[test]
    fn header_len_padding() {
        let seg = TcpSegment {
            options: vec![TcpOption::WindowScale(1)], // 3 bytes -> pad to 4
            ..TcpSegment::syn(1, 2, 3)
        };
        assert_eq!(seg.header_len(), 24);
    }
}
