//! ICMPv6 messages (RFC 4443): the subset active measurement needs.

use crate::checksum::{transport_checksum, verify_transport};
use crate::{proto, PacketError};
use std::net::Ipv6Addr;

/// ICMPv6 type numbers.
pub mod types {
    /// Destination unreachable.
    pub const DEST_UNREACHABLE: u8 = 1;
    /// Packet too big.
    pub const PACKET_TOO_BIG: u8 = 2;
    /// Time (hop limit) exceeded in transit.
    pub const TIME_EXCEEDED: u8 = 3;
    /// Echo request (ping).
    pub const ECHO_REQUEST: u8 = 128;
    /// Echo reply (pong).
    pub const ECHO_REPLY: u8 = 129;
}

/// Destination-unreachable codes (RFC 4443 §3.1).
pub mod unreach_code {
    /// No route to destination.
    pub const NO_ROUTE: u8 = 0;
    /// Communication administratively prohibited.
    pub const ADMIN_PROHIBITED: u8 = 1;
    /// Address unreachable.
    pub const ADDR_UNREACHABLE: u8 = 3;
    /// Port unreachable.
    pub const PORT_UNREACHABLE: u8 = 4;
}

/// A parsed ICMPv6 message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Icmpv6Message {
    /// Echo request with identifier, sequence number, and payload.
    EchoRequest {
        /// Echo identifier (zmap validation field).
        ident: u16,
        /// Echo sequence number.
        seq: u16,
        /// Opaque payload bytes, echoed back by the peer.
        payload: Vec<u8>,
    },
    /// Echo reply mirroring the request's fields.
    EchoReply {
        /// Echoed identifier.
        ident: u16,
        /// Echoed sequence number.
        seq: u16,
        /// Echoed payload.
        payload: Vec<u8>,
    },
    /// Destination unreachable; carries the leading bytes of the invoking
    /// packet (used by traceroute and UDP port-closed detection).
    DestUnreachable {
        /// Unreachable code (see [`unreach_code`]).
        code: u8,
        /// Leading bytes of the packet that triggered the error.
        invoking: Vec<u8>,
    },
    /// Hop limit exceeded in transit; carries the invoking packet — the
    /// bread and butter of traceroute.
    TimeExceeded {
        /// Time-exceeded code (0 = hop limit exceeded in transit).
        code: u8,
        /// Leading bytes of the packet that triggered the error.
        invoking: Vec<u8>,
    },
    /// Any other type, preserved raw.
    Other {
        /// Raw ICMPv6 type.
        icmp_type: u8,
        /// Raw code.
        code: u8,
        /// Message body after the 4-byte header.
        body: Vec<u8>,
    },
}

impl Icmpv6Message {
    /// The ICMPv6 type byte.
    pub fn msg_type(&self) -> u8 {
        match self {
            Icmpv6Message::EchoRequest { .. } => types::ECHO_REQUEST,
            Icmpv6Message::EchoReply { .. } => types::ECHO_REPLY,
            Icmpv6Message::DestUnreachable { .. } => types::DEST_UNREACHABLE,
            Icmpv6Message::TimeExceeded { .. } => types::TIME_EXCEEDED,
            Icmpv6Message::Other { icmp_type, .. } => *icmp_type,
        }
    }

    /// Encode with checksum for transmission between `src` and `dst`.
    pub fn emit(&self, src: Ipv6Addr, dst: Ipv6Addr) -> Vec<u8> {
        let mut out = vec![0u8; 4]; // type, code, checksum placeholder
        match self {
            Icmpv6Message::EchoRequest {
                ident,
                seq,
                payload,
            }
            | Icmpv6Message::EchoReply {
                ident,
                seq,
                payload,
            } => {
                out[0] = self.msg_type();
                out.extend_from_slice(&ident.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(payload);
            }
            Icmpv6Message::DestUnreachable { code, invoking }
            | Icmpv6Message::TimeExceeded { code, invoking } => {
                out[0] = self.msg_type();
                out[1] = *code;
                out.extend_from_slice(&[0u8; 4]); // unused field
                out.extend_from_slice(invoking);
            }
            Icmpv6Message::Other {
                icmp_type,
                code,
                body,
            } => {
                out[0] = *icmp_type;
                out[1] = *code;
                out.extend_from_slice(body);
            }
        }
        let ck = transport_checksum(src, dst, proto::ICMPV6, &out);
        out[2..4].copy_from_slice(&ck.to_be_bytes());
        out
    }

    /// Parse and verify the checksum.
    pub fn parse(src: Ipv6Addr, dst: Ipv6Addr, buf: &[u8]) -> Result<Icmpv6Message, PacketError> {
        if buf.len() < 4 {
            return Err(PacketError::Truncated);
        }
        if !verify_transport(src, dst, proto::ICMPV6, buf) {
            return Err(PacketError::BadChecksum);
        }
        let (icmp_type, code) = (buf[0], buf[1]);
        match icmp_type {
            types::ECHO_REQUEST | types::ECHO_REPLY => {
                if buf.len() < 8 {
                    return Err(PacketError::Truncated);
                }
                let ident = u16::from_be_bytes([buf[4], buf[5]]);
                let seq = u16::from_be_bytes([buf[6], buf[7]]);
                let payload = buf[8..].to_vec();
                Ok(if icmp_type == types::ECHO_REQUEST {
                    Icmpv6Message::EchoRequest {
                        ident,
                        seq,
                        payload,
                    }
                } else {
                    Icmpv6Message::EchoReply {
                        ident,
                        seq,
                        payload,
                    }
                })
            }
            types::DEST_UNREACHABLE | types::TIME_EXCEEDED => {
                if buf.len() < 8 {
                    return Err(PacketError::Truncated);
                }
                let invoking = buf[8..].to_vec();
                Ok(if icmp_type == types::DEST_UNREACHABLE {
                    Icmpv6Message::DestUnreachable { code, invoking }
                } else {
                    Icmpv6Message::TimeExceeded { code, invoking }
                })
            }
            _ => Ok(Icmpv6Message::Other {
                icmp_type,
                code,
                body: buf[4..].to_vec(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Ipv6Addr, Ipv6Addr) {
        (
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
        )
    }

    #[test]
    fn echo_roundtrip() {
        let (s, d) = pair();
        let msg = Icmpv6Message::EchoRequest {
            ident: 0xbeef,
            seq: 42,
            payload: b"expanse".to_vec(),
        };
        let bytes = msg.emit(s, d);
        assert_eq!(bytes[0], 128);
        assert_eq!(Icmpv6Message::parse(s, d, &bytes).unwrap(), msg);
    }

    #[test]
    fn reply_roundtrip() {
        let (s, d) = pair();
        let msg = Icmpv6Message::EchoReply {
            ident: 1,
            seq: 2,
            payload: vec![],
        };
        let bytes = msg.emit(s, d);
        assert_eq!(Icmpv6Message::parse(s, d, &bytes).unwrap(), msg);
    }

    #[test]
    fn time_exceeded_carries_invoking_packet() {
        let (s, d) = pair();
        let invoking = vec![0x60, 0, 0, 0, 0, 0];
        let msg = Icmpv6Message::TimeExceeded {
            code: 0,
            invoking: invoking.clone(),
        };
        let bytes = msg.emit(s, d);
        match Icmpv6Message::parse(s, d, &bytes).unwrap() {
            Icmpv6Message::TimeExceeded {
                code: 0,
                invoking: inv,
            } => {
                assert_eq!(inv, invoking)
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn checksum_enforced() {
        let (s, d) = pair();
        let msg = Icmpv6Message::EchoRequest {
            ident: 1,
            seq: 1,
            payload: vec![1, 2, 3, 4],
        };
        let mut bytes = msg.emit(s, d);
        bytes[9] ^= 0x01;
        assert_eq!(
            Icmpv6Message::parse(s, d, &bytes),
            Err(PacketError::BadChecksum)
        );
        // Also: valid bytes but wrong addresses (checksum covers them).
        let bytes = msg.emit(s, d);
        let e: Ipv6Addr = "2001:db8::3".parse().unwrap();
        assert_eq!(
            Icmpv6Message::parse(s, e, &bytes),
            Err(PacketError::BadChecksum)
        );
    }

    #[test]
    fn other_type_preserved() {
        let (s, d) = pair();
        let msg = Icmpv6Message::Other {
            icmp_type: 135, // neighbor solicitation
            code: 0,
            body: vec![9, 9],
        };
        let bytes = msg.emit(s, d);
        assert_eq!(Icmpv6Message::parse(s, d, &bytes).unwrap(), msg);
    }
}
