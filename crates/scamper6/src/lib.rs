//! `expanse-scamper6`: a scamper-style IPv6 traceroute engine.
//!
//! §3 of the paper: *"we run traceroute measurements using scamper on all
//! addresses from other sources, and extract router IP addresses learned
//! from these measurements"* — the Scamper source grows to 25.9 M
//! addresses, mostly home-router CPE. This crate reproduces that path:
//! hop-limited ICMPv6 echo probes (paris-style: stateless validation
//! fields constant per flow), Time-Exceeded collection, path assembly,
//! and router-address harvesting.

use expanse_addr::addr_to_u128;
use expanse_netsim::{Duration, EventQueue, Network, Time};
use expanse_packet::{Datagram, Icmpv6Message, Transport};
use expanse_zmap6::Validator;
use std::collections::HashSet;
use std::net::Ipv6Addr;

/// Traceroute configuration.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Vantage source address.
    pub src: Ipv6Addr,
    /// Largest hop limit tried.
    pub max_hops: u8,
    /// Attempts per hop (scamper default 2).
    pub attempts: u8,
    /// Per-hop reply wait.
    pub wait: Duration,
    /// Validation secret.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            src: "2001:db8:ffff::1".parse().expect("valid vantage"),
            max_hops: 16,
            attempts: 2,
            wait: Duration::from_millis(500),
            seed: 0x7ace,
        }
    }
}

/// One traced path.
#[derive(Debug, Clone)]
pub struct TracePath {
    /// The traced destination.
    pub dst: Ipv6Addr,
    /// Router address per hop (index 0 = hop 1); `None` = no answer.
    pub hops: Vec<Option<Ipv6Addr>>,
    /// Did the destination itself answer?
    pub reached: bool,
    /// Probes sent.
    pub probes_sent: u64,
}

impl TracePath {
    /// All router addresses discovered on this path.
    pub fn routers(&self) -> impl Iterator<Item = Ipv6Addr> + '_ {
        self.hops.iter().flatten().copied()
    }
}

/// The traceroute engine.
pub struct Tracer<N: Network> {
    net: N,
    cfg: TraceConfig,
    clock: Time,
}

impl<N: Network> Tracer<N> {
    /// Create a new instance.
    pub fn new(net: N, cfg: TraceConfig) -> Self {
        Tracer {
            net,
            cfg,
            clock: Time::ZERO,
        }
    }

    /// Access the underlying network.
    pub fn network_mut(&mut self) -> &mut N {
        &mut self.net
    }

    /// Trace the path to `dst`.
    pub fn trace(&mut self, dst: Ipv6Addr) -> TracePath {
        let validator = Validator::new(self.cfg.seed);
        let f = validator.fields(dst);
        let mut hops: Vec<Option<Ipv6Addr>> = Vec::new();
        let mut reached = false;
        let mut probes_sent = 0u64;

        'hops: for hop in 1..=self.cfg.max_hops {
            let mut hop_addr = None;
            for attempt in 0..self.cfg.attempts {
                probes_sent += 1;
                let probe = Datagram::icmpv6(
                    self.cfg.src,
                    dst,
                    hop,
                    Icmpv6Message::EchoRequest {
                        ident: f.ident,
                        // paris-style: sequence varies per attempt only.
                        seq: f.seq.wrapping_add(u16::from(attempt)),
                        payload: b"expanse-trace".to_vec(),
                    },
                );
                let mut rx: EventQueue<Vec<u8>> = EventQueue::new();
                for d in self.net.inject(self.clock, &probe.emit()) {
                    rx.push(d.at, d.frame);
                }
                self.clock += self.cfg.wait;
                while let Some((_, frame)) = rx.pop_due(self.clock) {
                    let Ok((hdr, t)) = Datagram::parse_transport(&frame) else {
                        continue;
                    };
                    match t {
                        Transport::Icmpv6(Icmpv6Message::TimeExceeded { invoking, .. }) => {
                            // Validate: the invoking packet must be ours
                            // to this destination.
                            let Ok(orig) = expanse_packet::Ipv6Header::parse(&invoking) else {
                                continue;
                            };
                            if orig.dst == dst && orig.src == self.cfg.src {
                                hop_addr = Some(hdr.src);
                            }
                        }
                        Transport::Icmpv6(Icmpv6Message::EchoReply { ident, .. })
                            if ident == f.ident && hdr.src == dst =>
                        {
                            hops.push(Some(dst));
                            reached = true;
                            break 'hops;
                        }
                        _ => {}
                    }
                }
                if hop_addr.is_some() {
                    break;
                }
            }
            // Destination reached via TE? (never: TE comes from routers)
            hops.push(hop_addr);
            // Stop early after a long silent run (scamper's gap limit).
            if hops.len() >= 5 && hops.iter().rev().take(5).all(|h| h.is_none()) {
                break;
            }
        }
        TracePath {
            dst,
            hops,
            reached,
            probes_sent,
        }
    }

    /// Trace many targets, harvesting unique router addresses — the
    /// Scamper hitlist source.
    pub fn harvest(&mut self, targets: &[Ipv6Addr]) -> HarvestResult {
        let mut routers: HashSet<u128> = HashSet::new();
        let mut reached = 0usize;
        let mut probes = 0u64;
        for &dst in targets {
            let path = self.trace(dst);
            probes += path.probes_sent;
            if path.reached {
                reached += 1;
            }
            for r in path.routers() {
                if r != dst {
                    routers.insert(addr_to_u128(r));
                }
            }
        }
        let mut addrs: Vec<Ipv6Addr> = routers
            .into_iter()
            .map(expanse_addr::u128_to_addr)
            .collect();
        addrs.sort();
        HarvestResult {
            routers: addrs,
            targets_traced: targets.len(),
            targets_reached: reached,
            probes_sent: probes,
        }
    }
}

/// Result of a harvesting run.
#[derive(Debug, Clone)]
pub struct HarvestResult {
    /// Unique router addresses discovered (destinations excluded).
    pub routers: Vec<Ipv6Addr>,
    /// Targets traced.
    pub targets_traced: usize,
    /// Targets that answered.
    pub targets_reached: usize,
    /// Probes sent.
    pub probes_sent: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use expanse_model::{InternetModel, ModelConfig};

    fn tracer() -> Tracer<InternetModel> {
        let model = InternetModel::build(ModelConfig::tiny(33));
        Tracer::new(model, TraceConfig::default())
    }

    #[test]
    fn traces_reach_aliased_targets() {
        let mut t = tracer();
        let p48 = t.network_mut().population.special.cdn_hook_48s[0];
        let dst = expanse_addr::keyed_random_addr(p48, 5);
        let path = t.trace(dst);
        assert!(path.reached, "aliased target should answer: {path:?}");
        assert!(path.hops.len() >= 4, "expected several hops");
        // Intermediate hops are routers, not the target.
        let routers: Vec<Ipv6Addr> = path.routers().filter(|r| *r != dst).collect();
        assert!(!routers.is_empty(), "should discover routers");
    }

    #[test]
    fn eyeball_paths_end_in_cpe() {
        let mut t = tracer();
        // Take an eyeball site address.
        let site = t
            .network_mut()
            .population
            .sites
            .iter()
            .find(|s| s.category == expanse_model::AsCategory::IspEyeball)
            .expect("eyeball site")
            .clone();
        let dst = site.addrs[0];
        let path = t.trace(dst);
        // Whether or not dst answers, the CPE hop should be discoverable.
        let slaac_hops = path
            .routers()
            .filter(|r| expanse_addr::is_eui64(*r))
            .count();
        assert!(
            slaac_hops >= 1 || path.hops.iter().filter(|h| h.is_none()).count() > 2,
            "expected an EUI-64 CPE hop (or heavy hop loss): {path:?}"
        );
    }

    #[test]
    fn unrouted_destination_never_reached() {
        let mut t = tracer();
        let path = t.trace("3fff::1".parse().unwrap());
        assert!(!path.reached);
        assert!(path.routers().count() == 0);
    }

    #[test]
    fn harvest_collects_many_routers() {
        let mut t = tracer();
        let targets: Vec<Ipv6Addr> = t
            .network_mut()
            .population
            .sites
            .iter()
            .filter(|s| s.category == expanse_model::AsCategory::IspEyeball)
            .flat_map(|s| s.addrs.iter().take(8).copied())
            .take(60)
            .collect();
        let h = t.harvest(&targets);
        assert_eq!(h.targets_traced, targets.len());
        assert!(h.routers.len() >= 8, "routers={}", h.routers.len());
        assert!(h.probes_sent > 100);
        // A healthy share of harvested routers are CPE (ff:fe).
        let slaac = h
            .routers
            .iter()
            .filter(|r| expanse_addr::is_eui64(**r))
            .count();
        assert!(
            slaac * 3 >= h.routers.len(),
            "slaac {slaac}/{}",
            h.routers.len()
        );
    }

    #[test]
    fn deterministic() {
        let mut a = tracer();
        let mut b = tracer();
        let dst = a.network_mut().population.sites[0].addrs[0];
        let pa = a.trace(dst);
        let pb = b.trace(dst);
        assert_eq!(pa.hops, pb.hops);
        assert_eq!(pa.reached, pb.reached);
    }
}
