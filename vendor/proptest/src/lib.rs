//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! [`any`], range strategies, tuple strategies, [`Just`],
//! [`prop_oneof!`], [`collection::vec`], and [`ProptestConfig`]. Cases
//! are drawn from a deterministic RNG seeded by the test name, so runs
//! are reproducible; there is no shrinking — a failing case panics with
//! its assertion message directly.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// The RNG driving case generation.
pub type TestRng = StdRng;

/// The case RNG for a named property (used by the `proptest!` macro).
pub fn rng_for(name: &str) -> TestRng {
    TestRng::seed_from_u64(seed_for(name))
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic seed for a property, derived from its name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-domain strategy for primitive types; see [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random::<T>()
    }
}

/// A uniform value over `T`'s whole domain.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: SampleUniform + Clone> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T: SampleUniform + Clone> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from the (non-empty) list of alternatives.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specifications accepted by [`vec()`]: an exact size, an
    /// exclusive range, or an inclusive range.
    pub trait IntoSizeRange {
        /// Normalize to inclusive `(min, max)` bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end.saturating_sub(1))
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            self.into_inner()
        }
    }

    /// A `Vec` with length drawn from `len` and elements from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// Strategy for vectors: `vec(element_strategy, length_spec)`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(elem: S, len: L) -> VecStrategy<S> {
        let (min, max) = len.bounds();
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.min >= self.max {
                self.min
            } else {
                rng.random_range(self.min..=self.max)
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property; panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniformly pick one of several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($arm) as $crate::BoxedStrategy<_>,)+
        ])
    };
}

/// The property-test harness macro. Each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running `ProptestConfig::cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for(stringify!($name));
            // The argument strategies, bundled as one tuple strategy.
            let __strats = ($($strat,)+);
            for __case in 0..__cfg.cases {
                let __vals = $crate::Strategy::generate(&__strats, &mut __rng);
                // Bodies may `return Ok(())` early, proptest-style; run
                // each case in a Result-returning closure to allow it.
                let __run = || -> ::std::result::Result<(), ::std::string::String> {
                    let ($($arg,)+) = __vals;
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(__e) = __run() {
                    panic!("proptest case {__case} failed: {__e}");
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        A,
        B(u16),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_respected(x in 5u32..10, y in 0u8..=3, f in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y <= 3);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn map_and_tuple(v in (any::<u16>(), 1usize..4).prop_map(|(a, n)| vec![a; n])) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| x == v[0]));
        }

        #[test]
        fn oneof_hits_all_arms(p in prop_oneof![Just(Pick::A), any::<u16>().prop_map(Pick::B)]) {
            match p {
                Pick::A => {}
                Pick::B(_) => {}
            }
        }

        #[test]
        fn vec_lengths(v in collection::vec(any::<u64>(), 0..5)) {
            prop_assert!(v.len() < 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = <TestRng as ::rand::SeedableRng>::seed_from_u64(seed_for("x"));
        let mut b = <TestRng as ::rand::SeedableRng>::seed_from_u64(seed_for("x"));
        let s = (any::<u64>(), 0u8..=16);
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    use crate::{seed_for, Strategy, TestRng};
}
