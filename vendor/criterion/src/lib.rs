//! Offline stand-in for `criterion`.
//!
//! Implements the macro and type surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`Bencher::iter_batched`],
//! [`Throughput`], [`BatchSize`] — measuring wall-clock time with
//! `std::time::Instant`. No statistics, plots, or comparisons: each
//! benchmark prints one `name: <time>/iter (<rate>)` line, which is
//! enough to track hot-path regressions by eye or by CI log diff.

use std::time::{Duration, Instant};

/// Measurement tuning shared by every benchmark in a run.
#[derive(Debug, Clone)]
pub struct Criterion {
    /// Target time to spend measuring one benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(300),
        }
    }
}

/// Units for [`BenchmarkGroup::throughput`] rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing for [`Bencher::iter_batched`]; the stand-in always runs
/// one setup per routine call, so the variants only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// The measurement handle passed to benchmark closures.
pub struct Bencher<'a> {
    measurement: Duration,
    result: &'a mut Option<Duration>,
}

impl Bencher<'_> {
    /// Measure `routine` repeatedly; records mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up, then scale the iteration count to the target budget.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.measurement.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        *self.result = Some(t1.elapsed() / iters.max(1) as u32);
    }

    /// Measure `routine` over fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        std::hint::black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.measurement.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            total += t.elapsed();
        }
        *self.result = Some(total / iters.max(1) as u32);
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, per_iter: Duration, throughput: Option<Throughput>) {
    let rate = throughput.map(|t| {
        let secs = per_iter.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!(" ({:.0} elem/s)", n as f64 / secs),
            Throughput::Bytes(n) => format!(" ({:.0} B/s)", n as f64 / secs),
        }
    });
    println!(
        "{name}: {}/iter{}",
        human(per_iter),
        rate.unwrap_or_default()
    );
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut result = None;
        f(&mut Bencher {
            measurement: self.measurement,
            result: &mut result,
        });
        if let Some(d) = result {
            report(name, d, None);
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut result = None;
        f(&mut Bencher {
            measurement: self.criterion.measurement,
            result: &mut result,
        });
        if let Some(d) = result {
            report(&format!("{}/{name}", self.name), d, self.throughput);
        }
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench harness `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
        c.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_with_throughput() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("f", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
