//! Offline stand-in for `serde_derive`.
//!
//! Emits empty impls of the vendored serde marker traits. Supports plain
//! (non-generic) structs and enums, which is all the workspace derives
//! on. Written against `proc_macro` directly so it builds without `syn`
//! or `quote` (no network access in this environment).

use proc_macro::{TokenStream, TokenTree};

/// Find the type name: the identifier following `struct` or `enum`.
fn type_name(input: TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return Some(s);
                }
                if s == "struct" || s == "enum" {
                    saw_kw = true;
                }
            }
            _ => {
                if saw_kw {
                    // `struct` followed by a non-ident: malformed for us.
                    return None;
                }
            }
        }
    }
    None
}

/// Derive the `serde::Serialize` marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input).expect("derive(Serialize) on a named struct/enum");
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl block")
}

/// Derive the `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input).expect("derive(Deserialize) on a named struct/enum");
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl block")
}
