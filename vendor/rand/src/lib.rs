//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! this vendored crate implements exactly the slice of the rand 0.9 API
//! the workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random`], [`Rng::random_range`], and
//! [`seq::SliceRandom::shuffle`]. The generator is SplitMix64 — not
//! cryptographic, but fast, full-period, and statistically sound for the
//! simulation workloads here. Determinism contract: identical seeds and
//! call sequences produce identical streams, forever (the model's
//! reproducibility depends on it, so the algorithm must never change).

/// Core entropy source: everything reduces to a `u64` stream.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let b = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible uniformly at random by [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with uniform range sampling for [`Rng::random_range`].
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`, or `[low, high]` if `inclusive`.
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let width = (high - low) as u128;
                let span = if inclusive {
                    match width.checked_add(1) {
                        Some(s) => s,
                        // Inclusive range covering the whole u128 domain.
                        None => return <$t as Standard>::sample(rng),
                    }
                } else {
                    assert!(low < high, "empty random_range");
                    width
                };
                // Modulo reduction over a full 128-bit draw; the bias is
                // at most span/2^128 — negligible for simulation work.
                let draw = <u128 as Standard>::sample(rng);
                low + (draw % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize, u128);

macro_rules! impl_sample_uniform_sint {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                // Shift into the unsigned domain, sample, shift back.
                let ulow = (low as $u).wrapping_add(<$t>::MIN.unsigned_abs());
                let uhigh = (high as $u).wrapping_add(<$t>::MIN.unsigned_abs());
                let v = <$u>::sample_range(rng, ulow, uhigh, inclusive);
                v.wrapping_sub(<$t>::MIN.unsigned_abs()) as $t
            }
        }
    )*};
}
impl_sample_uniform_sint!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        let unit = <f64 as Standard>::sample(rng);
        low + unit * (high - low)
    }
}

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_range(rng, start, end, true)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// A uniform value of `T`'s full domain.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value from `range`.
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A bool that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0u8..=255);
            let _ = w;
            let f = rng.random_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let big = rng.random_range(0..(1u128 << 80));
            assert!(big < (1u128 << 80));
        }
    }

    #[test]
    fn range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for c in counts {
            let share = c as f64 / n as f64;
            assert!((share - 0.1).abs() < 0.01, "share {share}");
        }
    }

    #[test]
    fn unit_float_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle should move things");
    }

    #[test]
    fn choose_covers_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let v = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
