//! Offline stand-in for `serde`.
//!
//! The workspace only *marks* types as serializable (derives on config
//! structs); nothing serializes yet. These marker traits keep the derive
//! sites compiling without the real serde; when a later PR needs actual
//! wire formats, this crate is the seam to replace.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_markers!(
    (),
    bool,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String,
    char
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
